//! Per-query caches of derived object state.
//!
//! A single NNC query compares each visited object against many candidates
//! (Algorithm 1), so distance distributions, statistics, quantised masses
//! and distance-space mappings are computed once per object per query and
//! shared across all pairwise checks.
//!
//! Every getter records one cache hit or miss into both the legacy
//! [`Stats`] counters and the [`QueryMetrics`] registry. Derived getters
//! (`agg` over `dist_q`, `per_q_agg` over `per_q`) count their nested
//! lookups too — the counters measure cache traffic, not distinct entries.

use crate::config::Stats;
#[cfg(test)]
use crate::db::Database;
use crate::index::SpatialIndex;
use crate::query::PreparedQuery;
use crate::warm::WarmView;
use osd_geom::{distance_space_row, Mbr, Point};
use osd_obs::{Counter, QueryMetrics};
use osd_rtree::{Entry, RTree};
use osd_uncertain::{quantize, DistanceDistribution};
use std::sync::Arc;

/// min / mean / max of a distance distribution — the statistic-pruning
/// triple of Theorem 11.
pub type AggStats = (f64, f64, f64);

/// Distance-space image of an object: the mapped points plus an R-tree over
/// them (payload = instance index).
pub type MappedInstances = (Vec<Point>, RTree<usize>);

/// An `(optimistic, pessimistic)` pair of level-bound distributions
/// (§5.1.1): whole mass of each group placed at its minimal resp. maximal
/// distance to the query.
pub type BoundPair = (DistanceDistribution, DistanceDistribution);

/// One level of a [`LevelSnapshot`]: the group MBRs of the §5.1.1
/// partition `U = {U¹, …, U^k}` with each group's probability mass, both
/// as the float sum used by the bound distributions and as the quantised
/// cap used by the group flow networks.
///
/// Members are folded in `level_groups` order with the same left-to-right
/// sums as the scalar per-pair rebuilds, so every derived quantity is
/// bit-for-bit identical to the unmemoized path.
#[derive(Debug)]
pub struct LevelGroups {
    /// Group MBRs, in `level_groups` order.
    pub mbrs: Vec<Mbr>,
    /// Float probability mass per group.
    pub masses: Vec<f64>,
    /// Quantised (fixed-point) mass per group.
    pub caps: Vec<u64>,
}

impl LevelGroups {
    /// Number of groups at this level.
    pub fn len(&self) -> usize {
        self.mbrs.len()
    }

    /// Whether the level has no groups (never true for snapshots built
    /// over the non-empty local trees).
    pub fn is_empty(&self) -> bool {
        self.mbrs.is_empty()
    }
}

/// Per-object memo of every level's group partition, built once per
/// traversal and shared by all `(u, v)` pairs the object participates in.
///
/// Levels `1..=height+1` are materialised eagerly (level `height + 1` is
/// the finest, all-singleton partition; every deeper level is identical
/// to it, which is why [`LevelSnapshot::level`] clamps).
#[derive(Debug)]
pub struct LevelSnapshot {
    height: usize,
    levels: Vec<LevelGroups>,
}

impl LevelSnapshot {
    /// Height of the underlying local R-tree (single leaf root = 0).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The groups at `level` (1-based, as in `RTree::level_groups`);
    /// levels beyond `height + 1` return the finest partition, exactly as
    /// the tree itself would.
    ///
    /// # Panics
    /// Panics if `level == 0` — level 0 (the whole object as one group) is
    /// never consulted by the level-by-level descent.
    pub fn level(&self, level: usize) -> &LevelGroups {
        &self.levels[self.clamped(level)]
    }

    /// Number of materialised levels (`height + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The index into the materialised levels that `level` resolves to;
    /// levels beyond `height + 1` clamp to the finest partition, so their
    /// derived state (bounds, caps) is shared with it.
    ///
    /// # Panics
    /// Panics if `level == 0` — level 0 (the whole object as one group) is
    /// never consulted by the level-by-level descent.
    pub fn clamped(&self, level: usize) -> usize {
        assert!(level >= 1, "level-by-level descent starts at level 1");
        level.min(self.levels.len()) - 1
    }
}

/// Lazily-populated per-object derived state for one query.
pub struct DominanceCache {
    /// `U_Q` per object.
    dist_q: Vec<Option<Arc<DistanceDistribution>>>,
    /// `U_q` for every query instance, per object.
    per_q: Vec<Option<Arc<Vec<DistanceDistribution>>>>,
    /// min/mean/max of `U_Q`, per object.
    agg: Vec<Option<AggStats>>,
    /// min/mean/max of each `U_q`, per object.
    per_q_agg: Vec<Option<Arc<Vec<AggStats>>>>,
    /// Quantised instance masses, per object.
    quanta: Vec<Option<Arc<Vec<u64>>>>,
    /// Distance-space image of the instances w.r.t. the query hull, plus an
    /// R-tree over it (for the §5.1.2 range-query network construction).
    mapped: Vec<Option<Arc<MappedInstances>>>,
    /// Indices of instances lying inside `CH(Q)`, per object (the geometric
    /// early-reject of the P-SD check).
    in_hull: Vec<Option<Arc<Vec<usize>>>>,
    /// Per-object level snapshots (group MBRs + masses + caps for every
    /// R-tree level), per object.
    levels: Vec<Option<Arc<LevelSnapshot>>>,
    /// Optimistic/pessimistic bounds on the whole `U_Q`, per object per
    /// clamped level (lazily sized to the snapshot's level count).
    bounds_whole: Vec<Vec<Option<Arc<BoundPair>>>>,
    /// Optimistic/pessimistic bounds on each `U_q` (query-instance order),
    /// per object per clamped level.
    bounds_instance: Vec<Vec<Option<Arc<Vec<BoundPair>>>>>,
    /// Snapshot-scoped warm view, consulted only on the miss path of the
    /// snapshot-pure getters (`quanta`, `level_snapshot`, level bounds) so
    /// the legacy per-query hit/miss counters keep their exact semantics.
    warm: Option<WarmView>,
}

impl DominanceCache {
    /// Creates an empty cache for a database of `n` objects.
    pub fn new(n: usize) -> Self {
        Self::with_warm(n, None)
    }

    /// Creates an empty cache that resolves snapshot-pure misses through
    /// `warm` (a per-query view into the shared epoch-keyed cache) instead
    /// of rebuilding locally. `None` is the plain cold cache.
    pub fn with_warm(n: usize, warm: Option<WarmView>) -> Self {
        DominanceCache {
            dist_q: vec![None; n],
            per_q: vec![None; n],
            agg: vec![None; n],
            per_q_agg: vec![None; n],
            quanta: vec![None; n],
            mapped: vec![None; n],
            in_hull: vec![None; n],
            levels: vec![None; n],
            bounds_whole: vec![Vec::new(); n],
            bounds_instance: vec![Vec::new(); n],
            warm,
        }
    }

    /// The warm view this cache resolves snapshot-pure misses through, if
    /// any.
    pub fn warm(&self) -> Option<&WarmView> {
        self.warm.as_ref()
    }

    /// The full distance distribution `U_Q` of object `id`.
    pub fn dist_q(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<DistanceDistribution> {
        if let Some(d) = &self.dist_q[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(d);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        stats.instance_comparisons += (obj.len() * query.len()) as u64;
        let d = Arc::new(DistanceDistribution::between_ref(obj, query.object()));
        self.dist_q[id] = Some(Arc::clone(&d));
        d
    }

    /// The per-query-instance distributions `U_q` of object `id`, in query
    /// instance order.
    pub fn per_q(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<DistanceDistribution>> {
        if let Some(d) = &self.per_q[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(d);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        stats.instance_comparisons += (obj.len() * query.len()) as u64;
        let d = Arc::new(
            query
                .object()
                .instances()
                .iter()
                .map(|q| DistanceDistribution::to_instance_ref(obj, &q.point))
                .collect::<Vec<_>>(),
        );
        self.per_q[id] = Some(Arc::clone(&d));
        d
    }

    /// min/mean/max of `U_Q`.
    pub fn agg(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> AggStats {
        if let Some(a) = self.agg[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return a;
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let d = self.dist_q(db, query, id, stats, metrics);
        let a = (d.min(), d.mean(), d.max());
        self.agg[id] = Some(a);
        a
    }

    /// min/mean/max of each `U_q`.
    pub fn per_q_agg(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<AggStats>> {
        if let Some(a) = &self.per_q_agg[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(a);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let per_q = self.per_q(db, query, id, stats, metrics);
        let a = Arc::new(
            per_q
                .iter()
                .map(|d| (d.min(), d.mean(), d.max()))
                .collect::<Vec<_>>(),
        );
        self.per_q_agg[id] = Some(Arc::clone(&a));
        a
    }

    /// Fixed-point instance masses of object `id` (summing to `SCALE`).
    pub fn quanta(
        &mut self,
        db: &dyn SpatialIndex,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<u64>> {
        if let Some(q) = &self.quanta[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(q);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let q = match &self.warm {
            Some(w) => w.quanta(db, id, metrics),
            // The store's probability column is already contiguous —
            // quantise the borrowed slice directly, no gather needed.
            None => Arc::new(quantize(db.object(id).probs())),
        };
        self.quanta[id] = Some(Arc::clone(&q));
        q
    }

    /// Distance-space mapping of the instances of `id` w.r.t. the query hull
    /// (`u ↦ (δ(u, q_1), …, δ(u, q_k))`), with an R-tree over the images.
    /// In this space `u ⪯_Q v` is coordinate-wise dominance (§5.1.2).
    pub fn mapped(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<MappedInstances> {
        if let Some(m) = &self.mapped[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(m);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        let hull = query.hull();
        stats.instance_comparisons += (obj.len() * hull.len()) as u64;
        let points: Vec<Point> = obj
            .coords()
            .chunks_exact(obj.dim())
            .map(|row| distance_space_row(row, hull))
            .collect();
        let entries: Vec<Entry<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Entry {
                mbr: osd_geom::Mbr::from_point(p),
                item: i,
            })
            .collect();
        let tree = RTree::bulk_load(8, entries);
        let m = Arc::new((points, tree));
        self.mapped[id] = Some(Arc::clone(&m));
        m
    }

    /// The per-level group partition of object `id`'s local R-tree: MBRs,
    /// float masses and quantised caps for every level, computed in **one
    /// pass** per level over `level_groups` and memoized for the rest of
    /// the traversal (the scalar path rebuilds all three for every `(u, v)`
    /// pair it checks).
    pub fn level_snapshot(
        &mut self,
        db: &dyn SpatialIndex,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<LevelSnapshot> {
        if let Some(s) = &self.levels[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(s);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        // The nested quanta lookup records its own hit/miss first, exactly
        // as the cold path does, before the warm view is consulted.
        let quanta = self.quanta(db, id, stats, metrics);
        let s = match &self.warm {
            Some(w) => w.level_snapshot(db, id, &quanta, metrics),
            None => Arc::new(build_level_snapshot(db, id, &quanta)),
        };
        self.levels[id] = Some(Arc::clone(&s));
        s
    }

    /// Optimistic/pessimistic bounds on the whole `U_Q` of object `id` at
    /// R-tree `level`, memoized per clamped level for the rest of the
    /// traversal (the scalar path re-derives and re-sorts both
    /// distributions for every `(u, v)` pair the object appears in).
    ///
    /// The memo carries no comparison cost itself: the caller charges the
    /// frozen per-use cost (2 comparisons per query instance per group),
    /// exactly as the scalar rebuild would, so the `Stats` contract of the
    /// kernels path stays bit-identical.
    pub fn level_bounds_whole(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        level: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<BoundPair> {
        let snap = self.level_snapshot(db, id, stats, metrics);
        let idx = snap.clamped(level);
        let slot = &mut self.bounds_whole[id];
        if slot.is_empty() {
            slot.resize_with(snap.num_levels(), || None);
        }
        if let Some(b) = &slot[idx] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(b);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let b = match &self.warm {
            Some(w) => w.bounds_whole(query, id, &snap, level, metrics),
            None => Arc::new(build_bounds_whole(query, snap.level(level))),
        };
        self.bounds_whole[id][idx] = Some(Arc::clone(&b));
        b
    }

    /// Optimistic/pessimistic bounds on each `U_q` of object `id` at R-tree
    /// `level`, in query-instance order, memoized per clamped level. Cost
    /// accounting follows [`Self::level_bounds_whole`]: the caller charges
    /// 2 comparisons per group per use of one instance's pair.
    pub fn level_bounds_instance(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        level: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<BoundPair>> {
        let snap = self.level_snapshot(db, id, stats, metrics);
        let idx = snap.clamped(level);
        let slot = &mut self.bounds_instance[id];
        if slot.is_empty() {
            slot.resize_with(snap.num_levels(), || None);
        }
        if let Some(b) = &slot[idx] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(b);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let b = match &self.warm {
            Some(w) => w.bounds_instance(query, id, &snap, level, metrics),
            None => Arc::new(build_bounds_instance(query, snap.level(level))),
        };
        self.bounds_instance[id][idx] = Some(Arc::clone(&b));
        b
    }

    /// Indices of instances of `id` that lie inside (or on) the convex hull
    /// of the query. An instance inside `CH(Q)` can only be peer-dominated
    /// by a coincident instance (§5.1.2).
    pub fn in_hull_instances(
        &mut self,
        db: &dyn SpatialIndex,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<usize>> {
        if let Some(l) = &self.in_hull[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(l);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        let hull = query.hull();
        stats.instance_comparisons += obj.len() as u64;
        let list: Vec<usize> = obj
            .coords()
            .chunks_exact(obj.dim())
            .enumerate()
            .filter(|(_, row)| {
                // Cheap MBR reject before the LP containment test.
                query.mbr().contains_row(row) && osd_geom::point_in_hull_row(row, hull)
            })
            .map(|(i, _)| i)
            .collect();
        let list = Arc::new(list);
        self.in_hull[id] = Some(Arc::clone(&list));
        list
    }
}

/// Builds the full per-level group partition of object `id`'s local R-tree
/// — the single sanctioned [`LevelSnapshot`] constructor, shared by the
/// per-query cold path and the snapshot-scoped warm cache so both produce
/// bit-identical snapshots. Charges nothing: the quantisation it consumes
/// is the caller's `quanta` entry.
pub(crate) fn build_level_snapshot(
    db: &dyn SpatialIndex,
    id: usize,
    quanta: &[u64],
) -> LevelSnapshot {
    let obj = db.object(id);
    let tree = db.local_tree(id);
    let height = tree.height().unwrap_or(0);
    // Level height+1 is the all-singleton partition; deeper levels
    // repeat it, so materialising up to height+1 covers every request.
    let mut levels = Vec::with_capacity(height + 1);
    for level in 1..=height + 1 {
        let groups = tree.level_groups(level);
        let mut mbrs = Vec::with_capacity(groups.len());
        let mut masses = Vec::with_capacity(groups.len());
        let mut caps = Vec::with_capacity(groups.len());
        for (mbr, items) in groups {
            // Same member order and left-to-right fold as the scalar
            // `group_masses` / caps rebuilds — bit-identical sums.
            masses.push(items.iter().map(|&&i| obj.prob(i)).sum());
            caps.push(items.iter().map(|&&i| quanta[i]).sum());
            mbrs.push(mbr);
        }
        levels.push(LevelGroups { mbrs, masses, caps });
    }
    LevelSnapshot { height, levels }
}

/// Builds the whole-`U_Q` bound pair for one snapshot level with the same
/// atom order and left-to-right folds as the scalar per-pair rebuild in
/// `ops::level`, so the resulting distributions are bit-identical to it.
pub(crate) fn build_bounds_whole(query: &PreparedQuery, level: &LevelGroups) -> BoundPair {
    let mut lo = Vec::with_capacity(level.len() * query.len());
    let mut hi = Vec::with_capacity(level.len() * query.len());
    for q in query.object().instances() {
        for (mbr, &mass) in level.mbrs.iter().zip(level.masses.iter()) {
            lo.push((mbr.min_dist_point(&q.point), q.prob * mass));
            hi.push((mbr.max_dist_point(&q.point), q.prob * mass));
        }
    }
    (
        DistanceDistribution::from_atoms(lo),
        DistanceDistribution::from_atoms(hi),
    )
}

/// Builds the per-`U_q` bound pairs for one snapshot level, in query
/// instance order, with the scalar rebuild's atom order.
pub(crate) fn build_bounds_instance(query: &PreparedQuery, level: &LevelGroups) -> Vec<BoundPair> {
    query
        .object()
        .instances()
        .iter()
        .map(|q| {
            let mut lo = Vec::with_capacity(level.len());
            let mut hi = Vec::with_capacity(level.len());
            for (mbr, &mass) in level.mbrs.iter().zip(level.masses.iter()) {
                lo.push((mbr.min_dist_point(&q.point), mass));
                hi.push((mbr.max_dist_point(&q.point), mass));
            }
            (
                DistanceDistribution::from_atoms(lo),
                DistanceDistribution::from_atoms(hi),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_uncertain::UncertainObject;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn setup() -> (Database, PreparedQuery) {
        let db = Database::new(vec![
            UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.0)]),
            UncertainObject::uniform(vec![p2(5.0, 5.0), p2(6.0, 5.0)]),
        ]);
        let q = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 1.0), p2(1.0, 1.0)]));
        (db, q)
    }

    #[test]
    fn caching_counts_cost_once() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let d1 = cache.dist_q(&db, &q, 0, &mut stats, &mut metrics);
        let after_first = stats.instance_comparisons;
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let d2 = cache.dist_q(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!(
            stats.instance_comparisons, after_first,
            "second hit must be free"
        );
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        if QueryMetrics::enabled() {
            assert_eq!(metrics.counter(Counter::CacheHits), stats.cache_hits);
            assert_eq!(metrics.counter(Counter::CacheMisses), stats.cache_misses);
        }
        assert!(Arc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn derived_getters_count_nested_lookups() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        // agg misses, then builds dist_q (another miss).
        let _ = cache.agg(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
        // Second agg is a single hit; dist_q is not consulted again.
        let _ = cache.agg(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 2));
    }

    #[test]
    fn per_q_matches_direct_construction() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let per_q = cache.per_q(&db, &q, 1, &mut stats, &mut metrics);
        assert_eq!(per_q.len(), 2);
        let direct = DistanceDistribution::to_instance_ref(db.object(1), &q.instance_points()[0]);
        assert!(per_q[0].approx_eq(&direct, 1e-12));
    }

    #[test]
    fn agg_matches_distribution_stats() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let (mn, mean, mx) = cache.agg(&db, &q, 0, &mut stats, &mut metrics);
        let d = cache.dist_q(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!(mn, d.min());
        assert_eq!(mean, d.mean());
        assert_eq!(mx, d.max());
    }

    #[test]
    fn level_snapshot_matches_scalar_rebuild_bitwise() {
        let objects: Vec<UncertainObject> = (0..3)
            .map(|k| {
                UncertainObject::uniform(
                    (0..9)
                        .map(|i| p2(k as f64 * 10.0 + i as f64 * 0.7, (i % 3) as f64))
                        .collect(),
                )
            })
            .collect();
        let db = Database::with_fanouts(objects, 4, 3);
        let q = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 1.0)]));
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        for id in 0..db.len() {
            let snap = cache.level_snapshot(&db, id, &mut stats, &mut metrics);
            let tree = db.local_tree(id);
            let obj = db.object(id);
            let quanta = cache.quanta(&db, id, &mut stats, &mut metrics);
            assert_eq!(snap.height(), tree.height().unwrap_or(0));
            // Levels past height+1 clamp to the finest (singleton) level.
            assert_eq!(
                snap.level(snap.height() + 5).len(),
                obj.len(),
                "finest level is one group per instance"
            );
            for level in 1..=snap.height() + 1 {
                let groups = tree.level_groups(level);
                let lg = snap.level(level);
                assert_eq!(lg.len(), groups.len());
                for (g, (mbr, items)) in groups.iter().enumerate() {
                    let scalar_mass: f64 = items.iter().map(|&&i| obj.prob(i)).sum();
                    let scalar_cap: u64 = items.iter().map(|&&i| quanta[i]).sum();
                    assert_eq!(lg.masses[g].to_bits(), scalar_mass.to_bits());
                    assert_eq!(lg.caps[g], scalar_cap);
                    assert_eq!(&lg.mbrs[g], mbr);
                }
            }
        }
        // Second lookup is a pure cache hit.
        let hits_before = stats.cache_hits;
        let _ = cache.level_snapshot(&db, 0, &mut stats, &mut metrics);
        assert_eq!(stats.cache_hits, hits_before + 1);

        // The memoized bound pairs equal a by-hand rebuild with the scalar
        // atom order, charge nothing at build time, and hit on re-lookup.
        let comparisons_before = stats.instance_comparisons;
        for id in 0..db.len() {
            let snap = cache.level_snapshot(&db, id, &mut stats, &mut metrics);
            for level in 1..=snap.height() + 1 {
                let lg = snap.level(level);
                let bw = cache.level_bounds_whole(&db, &q, id, level, &mut stats, &mut metrics);
                let mut lo = Vec::new();
                let mut hi = Vec::new();
                for qi in q.object().instances() {
                    for (mbr, &mass) in lg.mbrs.iter().zip(lg.masses.iter()) {
                        lo.push((mbr.min_dist_point(&qi.point), qi.prob * mass));
                        hi.push((mbr.max_dist_point(&qi.point), qi.prob * mass));
                    }
                }
                assert!(bw.0.approx_eq(&DistanceDistribution::from_atoms(lo), 0.0));
                assert!(bw.1.approx_eq(&DistanceDistribution::from_atoms(hi), 0.0));
                let bi = cache.level_bounds_instance(&db, &q, id, level, &mut stats, &mut metrics);
                assert_eq!(bi.len(), q.len());
                let again = cache.level_bounds_whole(&db, &q, id, level, &mut stats, &mut metrics);
                assert!(Arc::ptr_eq(&bw, &again), "clamped level must be shared");
            }
        }
        assert_eq!(
            stats.instance_comparisons, comparisons_before,
            "bound memo construction must not charge frozen counters"
        );
    }

    #[test]
    fn mapped_dimensionality_is_hull_size() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let m = cache.mapped(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!(m.0.len(), 2);
        assert_eq!(m.0[0].dim(), q.hull().len());
        assert_eq!(m.1.len(), 2);
    }
}
