//! Per-query caches of derived object state.
//!
//! A single NNC query compares each visited object against many candidates
//! (Algorithm 1), so distance distributions, statistics, quantised masses
//! and distance-space mappings are computed once per object per query and
//! shared across all pairwise checks.
//!
//! Every getter records one cache hit or miss into both the legacy
//! [`Stats`] counters and the [`QueryMetrics`] registry. Derived getters
//! (`agg` over `dist_q`, `per_q_agg` over `per_q`) count their nested
//! lookups too — the counters measure cache traffic, not distinct entries.

use crate::config::Stats;
use crate::db::Database;
use crate::query::PreparedQuery;
use osd_geom::{distance_space_row, Point};
use osd_obs::{Counter, QueryMetrics};
use osd_rtree::{Entry, RTree};
use osd_uncertain::{quantize, DistanceDistribution};
use std::sync::Arc;

/// min / mean / max of a distance distribution — the statistic-pruning
/// triple of Theorem 11.
pub type AggStats = (f64, f64, f64);

/// Distance-space image of an object: the mapped points plus an R-tree over
/// them (payload = instance index).
pub type MappedInstances = (Vec<Point>, RTree<usize>);

/// Lazily-populated per-object derived state for one query.
pub struct DominanceCache {
    /// `U_Q` per object.
    dist_q: Vec<Option<Arc<DistanceDistribution>>>,
    /// `U_q` for every query instance, per object.
    per_q: Vec<Option<Arc<Vec<DistanceDistribution>>>>,
    /// min/mean/max of `U_Q`, per object.
    agg: Vec<Option<AggStats>>,
    /// min/mean/max of each `U_q`, per object.
    per_q_agg: Vec<Option<Arc<Vec<AggStats>>>>,
    /// Quantised instance masses, per object.
    quanta: Vec<Option<Arc<Vec<u64>>>>,
    /// Distance-space image of the instances w.r.t. the query hull, plus an
    /// R-tree over it (for the §5.1.2 range-query network construction).
    mapped: Vec<Option<Arc<MappedInstances>>>,
    /// Indices of instances lying inside `CH(Q)`, per object (the geometric
    /// early-reject of the P-SD check).
    in_hull: Vec<Option<Arc<Vec<usize>>>>,
}

impl DominanceCache {
    /// Creates an empty cache for a database of `n` objects.
    pub fn new(n: usize) -> Self {
        DominanceCache {
            dist_q: vec![None; n],
            per_q: vec![None; n],
            agg: vec![None; n],
            per_q_agg: vec![None; n],
            quanta: vec![None; n],
            mapped: vec![None; n],
            in_hull: vec![None; n],
        }
    }

    /// The full distance distribution `U_Q` of object `id`.
    pub fn dist_q(
        &mut self,
        db: &Database,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<DistanceDistribution> {
        if let Some(d) = &self.dist_q[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(d);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        stats.instance_comparisons += (obj.len() * query.len()) as u64;
        let d = Arc::new(DistanceDistribution::between_ref(obj, query.object()));
        self.dist_q[id] = Some(Arc::clone(&d));
        d
    }

    /// The per-query-instance distributions `U_q` of object `id`, in query
    /// instance order.
    pub fn per_q(
        &mut self,
        db: &Database,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<DistanceDistribution>> {
        if let Some(d) = &self.per_q[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(d);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        stats.instance_comparisons += (obj.len() * query.len()) as u64;
        let d = Arc::new(
            query
                .object()
                .instances()
                .iter()
                .map(|q| DistanceDistribution::to_instance_ref(obj, &q.point))
                .collect::<Vec<_>>(),
        );
        self.per_q[id] = Some(Arc::clone(&d));
        d
    }

    /// min/mean/max of `U_Q`.
    pub fn agg(
        &mut self,
        db: &Database,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> AggStats {
        if let Some(a) = self.agg[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return a;
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let d = self.dist_q(db, query, id, stats, metrics);
        let a = (d.min(), d.mean(), d.max());
        self.agg[id] = Some(a);
        a
    }

    /// min/mean/max of each `U_q`.
    pub fn per_q_agg(
        &mut self,
        db: &Database,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<AggStats>> {
        if let Some(a) = &self.per_q_agg[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(a);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let per_q = self.per_q(db, query, id, stats, metrics);
        let a = Arc::new(
            per_q
                .iter()
                .map(|d| (d.min(), d.mean(), d.max()))
                .collect::<Vec<_>>(),
        );
        self.per_q_agg[id] = Some(Arc::clone(&a));
        a
    }

    /// Fixed-point instance masses of object `id` (summing to `SCALE`).
    pub fn quanta(
        &mut self,
        db: &Database,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<u64>> {
        if let Some(q) = &self.quanta[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(q);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        // The store's probability column is already contiguous — quantise
        // the borrowed slice directly, no gather needed.
        let q = Arc::new(quantize(db.object(id).probs()));
        self.quanta[id] = Some(Arc::clone(&q));
        q
    }

    /// Distance-space mapping of the instances of `id` w.r.t. the query hull
    /// (`u ↦ (δ(u, q_1), …, δ(u, q_k))`), with an R-tree over the images.
    /// In this space `u ⪯_Q v` is coordinate-wise dominance (§5.1.2).
    pub fn mapped(
        &mut self,
        db: &Database,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<MappedInstances> {
        if let Some(m) = &self.mapped[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(m);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        let hull = query.hull();
        stats.instance_comparisons += (obj.len() * hull.len()) as u64;
        let points: Vec<Point> = obj
            .coords()
            .chunks_exact(obj.dim())
            .map(|row| distance_space_row(row, hull))
            .collect();
        let entries: Vec<Entry<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Entry {
                mbr: osd_geom::Mbr::from_point(p),
                item: i,
            })
            .collect();
        let tree = RTree::bulk_load(8, entries);
        let m = Arc::new((points, tree));
        self.mapped[id] = Some(Arc::clone(&m));
        m
    }

    /// Indices of instances of `id` that lie inside (or on) the convex hull
    /// of the query. An instance inside `CH(Q)` can only be peer-dominated
    /// by a coincident instance (§5.1.2).
    pub fn in_hull_instances(
        &mut self,
        db: &Database,
        query: &PreparedQuery,
        id: usize,
        stats: &mut Stats,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<usize>> {
        if let Some(l) = &self.in_hull[id] {
            stats.cache_hits += 1;
            metrics.incr(Counter::CacheHits);
            return Arc::clone(l);
        }
        stats.cache_misses += 1;
        metrics.incr(Counter::CacheMisses);
        let obj = db.object(id);
        let hull = query.hull();
        stats.instance_comparisons += obj.len() as u64;
        let list: Vec<usize> = obj
            .coords()
            .chunks_exact(obj.dim())
            .enumerate()
            .filter(|(_, row)| {
                // Cheap MBR reject before the LP containment test.
                query.mbr().contains_row(row) && osd_geom::point_in_hull_row(row, hull)
            })
            .map(|(i, _)| i)
            .collect();
        let list = Arc::new(list);
        self.in_hull[id] = Some(Arc::clone(&list));
        list
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_uncertain::UncertainObject;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn setup() -> (Database, PreparedQuery) {
        let db = Database::new(vec![
            UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.0)]),
            UncertainObject::uniform(vec![p2(5.0, 5.0), p2(6.0, 5.0)]),
        ]);
        let q = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 1.0), p2(1.0, 1.0)]));
        (db, q)
    }

    #[test]
    fn caching_counts_cost_once() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let d1 = cache.dist_q(&db, &q, 0, &mut stats, &mut metrics);
        let after_first = stats.instance_comparisons;
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let d2 = cache.dist_q(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!(
            stats.instance_comparisons, after_first,
            "second hit must be free"
        );
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        if QueryMetrics::enabled() {
            assert_eq!(metrics.counter(Counter::CacheHits), stats.cache_hits);
            assert_eq!(metrics.counter(Counter::CacheMisses), stats.cache_misses);
        }
        assert!(Arc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn derived_getters_count_nested_lookups() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        // agg misses, then builds dist_q (another miss).
        let _ = cache.agg(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
        // Second agg is a single hit; dist_q is not consulted again.
        let _ = cache.agg(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 2));
    }

    #[test]
    fn per_q_matches_direct_construction() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let per_q = cache.per_q(&db, &q, 1, &mut stats, &mut metrics);
        assert_eq!(per_q.len(), 2);
        let direct = DistanceDistribution::to_instance_ref(db.object(1), &q.instance_points()[0]);
        assert!(per_q[0].approx_eq(&direct, 1e-12));
    }

    #[test]
    fn agg_matches_distribution_stats() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let (mn, mean, mx) = cache.agg(&db, &q, 0, &mut stats, &mut metrics);
        let d = cache.dist_q(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!(mn, d.min());
        assert_eq!(mean, d.mean());
        assert_eq!(mx, d.max());
    }

    #[test]
    fn mapped_dimensionality_is_hull_size() {
        let (db, q) = setup();
        let mut cache = DominanceCache::new(db.len());
        let mut stats = Stats::default();
        let mut metrics = QueryMetrics::new();
        let m = cache.mapped(&db, &q, 0, &mut stats, &mut metrics);
        assert_eq!(m.0.len(), 2);
        assert_eq!(m.0[0].dim(), q.hull().len());
        assert_eq!(m.1.len(), 2);
    }
}
