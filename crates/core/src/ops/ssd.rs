//! The S-SD dominance check (Definition 2, §5.1.1).
//!
//! `S-SD(U, V, Q)` iff `U_Q ⪯_st V_Q` and `U_Q ≠ V_Q`. Decided by a single
//! merged scan of the sorted pairwise distances, with:
//!
//! * cover-based *validation* via strict MBR dominance (Theorem 4);
//! * statistic-based *pruning* on min/mean/max (Theorem 11).

use crate::ctx::CheckCtx;
use osd_uncertain::stochastic::stochastically_dominates_counted;

pub(crate) fn check(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    // Cover-based validation (Theorem 4).
    if ctx.cfg.mbr_validation && ctx.validate_mbr(u, v) {
        return true;
    }
    // Statistic-based pruning (Theorem 11): any inverted statistic disproves
    // stochastic dominance.
    if ctx.cfg.pruning {
        let (min_u, mean_u, max_u) = ctx.agg(u);
        let (min_v, mean_v, max_v) = ctx.agg(v);
        ctx.stats.instance_comparisons += 3;
        if min_u > min_v || mean_u > mean_v || max_u > max_v {
            return false;
        }
    }
    // Level-by-level bounds over the local R-tree nodes (§5.1.1).
    if ctx.cfg.level_by_level {
        if let Some(decision) =
            super::level::try_decide(u, v, super::level::Granularity::Whole, ctx)
        {
            return decision;
        }
    }
    // Full single-scan check.
    let du = ctx.dist_q(u);
    let dv = ctx.dist_q(v);
    stochastically_dominates_counted(&du, &dv, &mut ctx.stats.instance_comparisons)
        && ctx.strict_guard(u, v)
}
