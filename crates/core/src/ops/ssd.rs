//! The S-SD dominance check (Definition 2, §5.1.1).
//!
//! `S-SD(U, V, Q)` iff `U_Q ⪯_st V_Q` and `U_Q ≠ V_Q`. Decided by a single
//! merged scan of the sorted pairwise distances, with:
//!
//! * cover-based *validation* via strict MBR dominance (Theorem 4);
//! * statistic-based *pruning* on min/mean/max (Theorem 11).

use crate::cache::DominanceCache;
use crate::config::{FilterConfig, Stats};
use crate::db::Database;
use crate::ops::{strict_guard, validate_mbr};
use crate::query::PreparedQuery;
use osd_uncertain::stochastic::stochastically_dominates_counted;

pub(crate) fn check(
    db: &Database,
    u: usize,
    v: usize,
    query: &PreparedQuery,
    cfg: &FilterConfig,
    cache: &mut DominanceCache,
    stats: &mut Stats,
) -> bool {
    // Cover-based validation (Theorem 4).
    if cfg.mbr_validation && validate_mbr(db, u, v, query, stats) {
        return true;
    }
    // Statistic-based pruning (Theorem 11): any inverted statistic disproves
    // stochastic dominance.
    if cfg.pruning {
        let (min_u, mean_u, max_u) = cache.agg(db, query, u, stats);
        let (min_v, mean_v, max_v) = cache.agg(db, query, v, stats);
        stats.instance_comparisons += 3;
        if min_u > min_v || mean_u > mean_v || max_u > max_v {
            return false;
        }
    }
    // Level-by-level bounds over the local R-tree nodes (§5.1.1).
    if cfg.level_by_level {
        if let Some(decision) =
            super::level::try_decide(db, u, v, query, super::level::Granularity::Whole, stats)
        {
            return decision;
        }
    }
    // Full single-scan check.
    let du = cache.dist_q(db, query, u, stats);
    let dv = cache.dist_q(db, query, v, stats);
    stochastically_dominates_counted(&du, &dv, &mut stats.instance_comparisons)
        && strict_guard(db, u, v, query, cache, stats)
}
