//! Level-by-level stochastic dominance bounds (§5.1.1, last paragraph):
//! "Suppose instances of each object are organized by an R-tree, we may
//! easily extend the above algorithms to conduct dominance check in a
//! level-by-level fashion."
//!
//! At R-tree level ℓ each object is a set of node groups with known MBRs
//! and probability masses. Placing a group's whole mass at its minimal
//! (resp. maximal) distance to a query instance yields an *optimistic*
//! (resp. *pessimistic*) bound distribution:
//!
//! ```text
//! U_opt ⪯_st U_Q ⪯_st U_pes
//! ```
//!
//! which gives, by transitivity of `⪯_st`:
//!
//! * **validation** — `U_pes ⪯_st V_opt  ⇒  U_Q ⪯_st V_Q`
//!   (plus `mean(U_pes) < mean(V_opt)` to certify `U_Q ≠ V_Q`);
//! * **pruning** — `¬(U_opt ⪯_st V_pes)  ⇒  ¬(U_Q ⪯_st V_Q)`.
//!
//! The check descends level by level and stops as soon as either rule
//! fires; inconclusive descents fall through to the exact scan.

use crate::config::Stats;
use crate::ctx::CheckCtx;
use crate::index::SpatialIndex;
use crate::query::PreparedQuery;
use osd_geom::Mbr;
use osd_obs::{AttrValue, Phase, PhaseTimer, SpanId};
use osd_uncertain::stochastic::stochastically_dominates_counted;
use osd_uncertain::DistanceDistribution;
use std::borrow::Cow;

/// Which distribution the level bounds approximate.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Granularity {
    /// Bounds on the full `U_Q` (for S-SD).
    Whole,
    /// Bounds on each `U_q` separately (for SS-SD).
    PerInstance,
}

/// Attempts to decide `U_Q ⪯_st V_Q` (strictly, for the SD side condition)
/// from R-tree node bounds. `Some(true)` = validated, `Some(false)` =
/// pruned, `None` = inconclusive.
///
/// The whole descent is recorded under the *level-prune* phase.
pub(crate) fn try_decide(
    u: usize,
    v: usize,
    granularity: Granularity,
    ctx: &mut CheckCtx<'_>,
) -> Option<bool> {
    let timer = PhaseTimer::start(Phase::LevelPrune);
    let span = ctx.trace.open("level-prune");
    let decision = try_decide_inner(u, v, granularity, ctx);
    if span != SpanId::NONE {
        ctx.trace.attr(span, "u", AttrValue::U64(u as u64));
        ctx.trace.attr(span, "v", AttrValue::U64(v as u64));
        ctx.trace.attr(
            span,
            "decision",
            AttrValue::Str(Cow::Borrowed(match decision {
                Some(true) => "validated",
                Some(false) => "pruned",
                None => "inconclusive",
            })),
        );
    }
    ctx.trace.close(span);
    ctx.metrics.record(timer);
    decision
}

fn try_decide_inner(
    u: usize,
    v: usize,
    granularity: Granularity,
    ctx: &mut CheckCtx<'_>,
) -> Option<bool> {
    if ctx.cfg.kernels {
        return try_decide_snapshot(u, v, granularity, ctx);
    }
    let db = ctx.db;
    let query = ctx.query;
    let stats = &mut ctx.stats;
    let tree_u = db.local_tree(u);
    let tree_v = db.local_tree(v);
    let depth = tree_u
        .height()
        .unwrap_or(0)
        .max(tree_v.height().unwrap_or(0));
    for level in 1..=depth {
        let gu = tree_u.level_groups(level);
        let gv = tree_v.level_groups(level);
        // Once both partitions are down to single instances the bounds are
        // exact but cost as much as the exact scan — stop early.
        if gu.len() == db.object(u).len() && gv.len() == db.object(v).len() {
            return None;
        }
        let masses_u = group_masses(db, u, &gu);
        let masses_v = group_masses(db, v, &gv);
        let zu = || group_view(&gu, &masses_u);
        let zv = || group_view(&gv, &masses_v);
        match granularity {
            Granularity::Whole => {
                let (u_opt, u_pes) = bound_whole(query, zu(), stats);
                let (v_opt, v_pes) = bound_whole(query, zv(), stats);
                if validated(&u_pes, &v_opt, stats) {
                    return Some(true);
                }
                if !stochastically_dominates_counted(
                    &u_opt,
                    &v_pes,
                    &mut stats.instance_comparisons,
                ) {
                    return Some(false);
                }
            }
            Granularity::PerInstance => {
                let mut all_validated = true;
                for q in query.object().instances() {
                    let (u_opt, u_pes) = bound_instance(&q.point, zu(), stats);
                    let (v_opt, v_pes) = bound_instance(&q.point, zv(), stats);
                    if !stochastically_dominates_counted(
                        &u_opt,
                        &v_pes,
                        &mut stats.instance_comparisons,
                    ) {
                        return Some(false);
                    }
                    if all_validated && !validated(&u_pes, &v_opt, stats) {
                        all_validated = false;
                    }
                }
                if all_validated {
                    return Some(true);
                }
            }
        }
    }
    None
}

/// The memoized twin of the scalar descent above: identical level loop,
/// early stop, decision rules and comparison counting, but the bound
/// distributions come from the per-(object, level) memo built once per
/// traversal instead of being re-derived and re-sorted for every `(u, v)`
/// pair. Each *use* of a memoized pair charges the same 2-per-(instance,
/// group) comparison cost the scalar rebuild pays, keeping the frozen
/// counters bit-identical.
fn try_decide_snapshot(
    u: usize,
    v: usize,
    granularity: Granularity,
    ctx: &mut CheckCtx<'_>,
) -> Option<bool> {
    let db = ctx.db;
    let m_q = ctx.query.len() as u64;
    let snap_u = ctx.level_snapshot(u);
    let snap_v = ctx.level_snapshot(v);
    let depth = snap_u.height().max(snap_v.height());
    for level in 1..=depth {
        let gu = snap_u.level(level).len();
        let gv = snap_v.level(level).len();
        if gu == db.object(u).len() && gv == db.object(v).len() {
            return None;
        }
        match granularity {
            Granularity::Whole => {
                let bu = ctx.level_bounds_whole(u, level);
                let bv = ctx.level_bounds_whole(v, level);
                let stats = &mut ctx.stats;
                stats.instance_comparisons += 2 * (gu as u64 + gv as u64) * m_q;
                let (u_opt, u_pes) = &*bu;
                let (v_opt, v_pes) = &*bv;
                if validated(u_pes, v_opt, stats) {
                    return Some(true);
                }
                if !stochastically_dominates_counted(u_opt, v_pes, &mut stats.instance_comparisons)
                {
                    return Some(false);
                }
            }
            Granularity::PerInstance => {
                let bu = ctx.level_bounds_instance(u, level);
                let bv = ctx.level_bounds_instance(v, level);
                let stats = &mut ctx.stats;
                let mut all_validated = true;
                for ((u_opt, u_pes), (v_opt, v_pes)) in bu.iter().zip(bv.iter()) {
                    stats.instance_comparisons += 2 * (gu as u64 + gv as u64);
                    if !stochastically_dominates_counted(
                        u_opt,
                        v_pes,
                        &mut stats.instance_comparisons,
                    ) {
                        return Some(false);
                    }
                    if all_validated && !validated(u_pes, v_opt, stats) {
                        all_validated = false;
                    }
                }
                if all_validated {
                    return Some(true);
                }
            }
        }
    }
    None
}

fn group_masses(db: &dyn SpatialIndex, id: usize, groups: &[(Mbr, Vec<&usize>)]) -> Vec<f64> {
    let obj = db.object(id);
    groups
        .iter()
        .map(|(_, items)| items.iter().map(|&&i| obj.prob(i)).sum())
        .collect()
}

/// `(group MBR, group mass)` view over the scalar per-pair rebuild.
fn group_view<'m>(
    groups: &'m [(Mbr, Vec<&usize>)],
    masses: &'m [f64],
) -> impl Iterator<Item = (&'m Mbr, f64)> + Clone {
    groups.iter().map(|(m, _)| m).zip(masses.iter().copied())
}

/// Optimistic / pessimistic bounds on the whole `U_Q`.
fn bound_whole<'m>(
    query: &PreparedQuery,
    groups: impl Iterator<Item = (&'m Mbr, f64)> + Clone,
    stats: &mut Stats,
) -> (DistanceDistribution, DistanceDistribution) {
    let n_groups = groups.size_hint().0;
    let mut lo = Vec::with_capacity(n_groups * query.len());
    let mut hi = Vec::with_capacity(n_groups * query.len());
    for q in query.object().instances() {
        for (mbr, mass) in groups.clone() {
            stats.instance_comparisons += 2;
            lo.push((mbr.min_dist_point(&q.point), q.prob * mass));
            hi.push((mbr.max_dist_point(&q.point), q.prob * mass));
        }
    }
    (
        DistanceDistribution::from_atoms(lo),
        DistanceDistribution::from_atoms(hi),
    )
}

/// Optimistic / pessimistic bounds on a single `U_q`.
fn bound_instance<'m>(
    q: &osd_geom::Point,
    groups: impl Iterator<Item = (&'m Mbr, f64)> + Clone,
    stats: &mut Stats,
) -> (DistanceDistribution, DistanceDistribution) {
    let n_groups = groups.size_hint().0;
    let mut lo = Vec::with_capacity(n_groups);
    let mut hi = Vec::with_capacity(n_groups);
    for (mbr, mass) in groups {
        stats.instance_comparisons += 2;
        lo.push((mbr.min_dist_point(q), mass));
        hi.push((mbr.max_dist_point(q), mass));
    }
    (
        DistanceDistribution::from_atoms(lo),
        DistanceDistribution::from_atoms(hi),
    )
}

/// Validation with a strictness certificate: pessimistic-U dominating
/// optimistic-V proves `U_Q ⪯_st V_Q`; a strictly smaller mean proves
/// `U_Q ≠ V_Q` on top.
fn validated(
    u_pes: &DistanceDistribution,
    v_opt: &DistanceDistribution,
    stats: &mut Stats,
) -> bool {
    stats.instance_comparisons += 1;
    u_pes.mean() < v_opt.mean()
        && stochastically_dominates_counted(u_pes, v_opt, &mut stats.instance_comparisons)
}
