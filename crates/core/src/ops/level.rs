//! Level-by-level stochastic dominance bounds (§5.1.1, last paragraph):
//! "Suppose instances of each object are organized by an R-tree, we may
//! easily extend the above algorithms to conduct dominance check in a
//! level-by-level fashion."
//!
//! At R-tree level ℓ each object is a set of node groups with known MBRs
//! and probability masses. Placing a group's whole mass at its minimal
//! (resp. maximal) distance to a query instance yields an *optimistic*
//! (resp. *pessimistic*) bound distribution:
//!
//! ```text
//! U_opt ⪯_st U_Q ⪯_st U_pes
//! ```
//!
//! which gives, by transitivity of `⪯_st`:
//!
//! * **validation** — `U_pes ⪯_st V_opt  ⇒  U_Q ⪯_st V_Q`
//!   (plus `mean(U_pes) < mean(V_opt)` to certify `U_Q ≠ V_Q`);
//! * **pruning** — `¬(U_opt ⪯_st V_pes)  ⇒  ¬(U_Q ⪯_st V_Q)`.
//!
//! The check descends level by level and stops as soon as either rule
//! fires; inconclusive descents fall through to the exact scan.

use crate::config::Stats;
use crate::ctx::CheckCtx;
use crate::db::Database;
use crate::query::PreparedQuery;
use osd_geom::Mbr;
use osd_obs::{Phase, PhaseTimer};
use osd_uncertain::stochastic::stochastically_dominates_counted;
use osd_uncertain::DistanceDistribution;

/// Which distribution the level bounds approximate.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Granularity {
    /// Bounds on the full `U_Q` (for S-SD).
    Whole,
    /// Bounds on each `U_q` separately (for SS-SD).
    PerInstance,
}

/// Attempts to decide `U_Q ⪯_st V_Q` (strictly, for the SD side condition)
/// from R-tree node bounds. `Some(true)` = validated, `Some(false)` =
/// pruned, `None` = inconclusive.
///
/// The whole descent is recorded under the *level-prune* phase.
pub(crate) fn try_decide(
    u: usize,
    v: usize,
    granularity: Granularity,
    ctx: &mut CheckCtx<'_>,
) -> Option<bool> {
    let timer = PhaseTimer::start(Phase::LevelPrune);
    let decision = try_decide_inner(u, v, granularity, ctx);
    ctx.metrics.record(timer);
    decision
}

fn try_decide_inner(
    u: usize,
    v: usize,
    granularity: Granularity,
    ctx: &mut CheckCtx<'_>,
) -> Option<bool> {
    let db = ctx.db;
    let query = ctx.query;
    let stats = &mut ctx.stats;
    let tree_u = db.local_tree(u);
    let tree_v = db.local_tree(v);
    let depth = tree_u
        .height()
        .unwrap_or(0)
        .max(tree_v.height().unwrap_or(0));
    for level in 1..=depth {
        let gu = tree_u.level_groups(level);
        let gv = tree_v.level_groups(level);
        // Once both partitions are down to single instances the bounds are
        // exact but cost as much as the exact scan — stop early.
        if gu.len() == db.object(u).len() && gv.len() == db.object(v).len() {
            return None;
        }
        let masses_u = group_masses(db, u, &gu);
        let masses_v = group_masses(db, v, &gv);
        match granularity {
            Granularity::Whole => {
                let (u_opt, u_pes) = bound_whole(query, &gu, &masses_u, stats);
                let (v_opt, v_pes) = bound_whole(query, &gv, &masses_v, stats);
                if validated(&u_pes, &v_opt, stats) {
                    return Some(true);
                }
                if !stochastically_dominates_counted(
                    &u_opt,
                    &v_pes,
                    &mut stats.instance_comparisons,
                ) {
                    return Some(false);
                }
            }
            Granularity::PerInstance => {
                let mut all_validated = true;
                for q in query.object().instances() {
                    let (u_opt, u_pes) = bound_instance(&q.point, &gu, &masses_u, stats);
                    let (v_opt, v_pes) = bound_instance(&q.point, &gv, &masses_v, stats);
                    if !stochastically_dominates_counted(
                        &u_opt,
                        &v_pes,
                        &mut stats.instance_comparisons,
                    ) {
                        return Some(false);
                    }
                    if all_validated && !validated(&u_pes, &v_opt, stats) {
                        all_validated = false;
                    }
                }
                if all_validated {
                    return Some(true);
                }
            }
        }
    }
    None
}

fn group_masses(db: &Database, id: usize, groups: &[(Mbr, Vec<&usize>)]) -> Vec<f64> {
    let obj = db.object(id);
    groups
        .iter()
        .map(|(_, items)| items.iter().map(|&&i| obj.prob(i)).sum())
        .collect()
}

/// Optimistic / pessimistic bounds on the whole `U_Q`.
fn bound_whole(
    query: &PreparedQuery,
    groups: &[(Mbr, Vec<&usize>)],
    masses: &[f64],
    stats: &mut Stats,
) -> (DistanceDistribution, DistanceDistribution) {
    let mut lo = Vec::with_capacity(groups.len() * query.len());
    let mut hi = Vec::with_capacity(groups.len() * query.len());
    for q in query.object().instances() {
        for ((mbr, _), &mass) in groups.iter().zip(masses) {
            stats.instance_comparisons += 2;
            lo.push((mbr.min_dist_point(&q.point), q.prob * mass));
            hi.push((mbr.max_dist_point(&q.point), q.prob * mass));
        }
    }
    (
        DistanceDistribution::from_atoms(lo),
        DistanceDistribution::from_atoms(hi),
    )
}

/// Optimistic / pessimistic bounds on a single `U_q`.
fn bound_instance(
    q: &osd_geom::Point,
    groups: &[(Mbr, Vec<&usize>)],
    masses: &[f64],
    stats: &mut Stats,
) -> (DistanceDistribution, DistanceDistribution) {
    let mut lo = Vec::with_capacity(groups.len());
    let mut hi = Vec::with_capacity(groups.len());
    for ((mbr, _), &mass) in groups.iter().zip(masses) {
        stats.instance_comparisons += 2;
        lo.push((mbr.min_dist_point(q), mass));
        hi.push((mbr.max_dist_point(q), mass));
    }
    (
        DistanceDistribution::from_atoms(lo),
        DistanceDistribution::from_atoms(hi),
    )
}

/// Validation with a strictness certificate: pessimistic-U dominating
/// optimistic-V proves `U_Q ⪯_st V_Q`; a strictly smaller mean proves
/// `U_Q ≠ V_Q` on top.
fn validated(
    u_pes: &DistanceDistribution,
    v_opt: &DistanceDistribution,
    stats: &mut Stats,
) -> bool {
    stats.instance_comparisons += 1;
    u_pes.mean() < v_opt.mean()
        && stochastically_dominates_counted(u_pes, v_opt, &mut stats.instance_comparisons)
}
