//! The spatial dominance operators (§2, §5.1).
//!
//! * [`Operator`] selects among S-SD, SS-SD, P-SD, F-SD and F⁺-SD;
//! * [`dominates`] runs the configured dominance check between two objects
//!   of a [`Database`] with shared caching;
//! * `s_sd` / `ss_sd` / `p_sd` / `f_sd` / `f_plus_sd` are standalone
//!   convenience wrappers over raw objects.

mod fsd;
mod level;
mod psd;
pub mod sphere;
mod ssd;
mod sssd;

use crate::config::FilterConfig;
use crate::ctx::CheckCtx;
use crate::db::Database;
use crate::query::PreparedQuery;
use osd_uncertain::UncertainObject;

pub use psd::peer_network_flow;
pub use sphere::{enclosing_ball, sphere_validate};

/// The spatial dominance operators, ordered from strongest dominance
/// condition (fewest dominations, most candidates) to weakest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Full spatial dominance on MBRs (Emrich et al. \[16\]) — the F⁺-SD
    /// baseline of §6.
    FPlusSd,
    /// Full spatial dominance on instances (§1, §6).
    FSd,
    /// Peer spatial dominance (Definition 5) — optimal w.r.t. N1 ∪ N2 ∪ N3.
    PSd,
    /// Strict stochastic spatial dominance (Definition 3) — optimal w.r.t.
    /// N1 ∪ N2.
    SsSd,
    /// Stochastic spatial dominance (Definition 2) — optimal w.r.t. N1.
    SSd,
}

impl Operator {
    /// All five operators in the paper's presentation order
    /// (SSD, SSSD, PSD, FSD, F⁺SD).
    pub const ALL: [Operator; 5] = [
        Operator::SSd,
        Operator::SsSd,
        Operator::PSd,
        Operator::FSd,
        Operator::FPlusSd,
    ];

    /// The label used in the paper's figures (§6 evaluation).
    pub fn label(&self) -> &'static str {
        match self {
            Operator::SSd => "SSD",
            Operator::SsSd => "SSSD",
            Operator::PSd => "PSD",
            Operator::FSd => "FSD",
            Operator::FPlusSd => "F+SD",
        }
    }
}

/// Checks whether object `u` dominates object `v` under `op` — the
/// `SD(U, V, Q)` dispatch over Definitions 2–6 of the paper — against the
/// query environment carried by `ctx` (database, prepared query, filter
/// configuration, per-query cache and cost counters).
///
/// With the `strict-invariants` feature the result is cross-checked
/// against the cover chain of Theorem 2 on every call.
pub fn dominates(op: Operator, u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    debug_assert_ne!(u, v, "an object is never checked against itself");
    ctx.stats.dominance_checks += 1;
    let result = raw_check(op, u, v, ctx);
    #[cfg(feature = "strict-invariants")]
    audit_cover_chain(op, result, u, v, ctx);
    result
}

/// The undecorated per-operator dispatch (no stats bump, no audit) —
/// shared by [`dominates`] and the `strict-invariants` cover-chain audit.
fn raw_check(op: Operator, u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    match op {
        Operator::SSd => ssd::check(u, v, ctx),
        Operator::SsSd => sssd::check(u, v, ctx),
        Operator::PSd => psd::check(u, v, ctx),
        Operator::FSd => fsd::check(u, v, ctx),
        Operator::FPlusSd => {
            // MBR-level antisymmetry guard: mutual MBR dominance only occurs
            // for exactly-tied configurations (equidistant degenerate boxes),
            // where neither object should exclude the other — the same
            // equal-twin rationale as the instance-level guard in `fsd`.
            ctx.stats.mbr_checks += 2;
            let (db, query) = (ctx.db, ctx.query);
            osd_geom::mbr_dominates(db.object(u).mbr(), db.object(v).mbr(), query.mbr())
                && !osd_geom::mbr_dominates(db.object(v).mbr(), db.object(u).mbr(), query.mbr())
        }
    }
}

/// Cover-chain audit (Theorem 2): `F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD` — a
/// domination under a stronger operator must also hold under the next
/// weaker one. Cross-checked on small inputs only (the weaker check costs
/// up to a flow solve), via `debug_assert!` so release builds pay nothing
/// even with the feature on. `Stats` is `Copy`, so the audit snapshots and
/// restores the counters rather than polluting the measured run.
#[cfg(feature = "strict-invariants")]
fn audit_cover_chain(op: Operator, result: bool, u: usize, v: usize, ctx: &mut CheckCtx<'_>) {
    const MAX_AUDIT_INSTANCES: usize = 8;
    if !result
        || ctx.db.object(u).len() > MAX_AUDIT_INSTANCES
        || ctx.db.object(v).len() > MAX_AUDIT_INSTANCES
        || ctx.query.len() > MAX_AUDIT_INSTANCES
    {
        return;
    }
    // F⁺-SD is the MBR-level baseline, outside the Theorem 2 chain.
    let weaker = match op {
        Operator::FPlusSd | Operator::SSd => return,
        Operator::FSd => Operator::PSd,
        Operator::PSd => Operator::SsSd,
        Operator::SsSd => Operator::SSd,
    };
    let snapshot = ctx.stats;
    let weaker_holds = raw_check(weaker, u, v, ctx);
    ctx.stats = snapshot;
    debug_assert!(
        weaker_holds,
        "cover chain (Theorem 2) violated: {op:?} dominates u={u}, v={v} but {weaker:?} does not"
    );
}

macro_rules! standalone {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(u: &UncertainObject, v: &UncertainObject, q: &UncertainObject) -> bool {
            let db = Database::new(vec![u.clone(), v.clone()]);
            let query = PreparedQuery::new(q.clone());
            let mut ctx = CheckCtx::new(&db, &query, FilterConfig::all());
            dominates($op, 0, 1, &mut ctx)
        }
    };
}

standalone!(
    /// Standalone stochastic spatial dominance check: `S-SD(u, v, q)` (Definition 2).
    s_sd,
    Operator::SSd
);
standalone!(
    /// Standalone strict stochastic spatial dominance check: `SS-SD(u, v, q)` (Definition 3).
    ss_sd,
    Operator::SsSd
);
standalone!(
    /// Standalone peer spatial dominance check: `P-SD(u, v, q)` (Definition 5).
    p_sd,
    Operator::PSd
);
standalone!(
    /// Standalone instance-level full spatial dominance check: `F-SD(u, v, q)` (Definition 6).
    f_sd,
    Operator::FSd
);
standalone!(
    /// Standalone MBR-level full spatial dominance check: `F⁺-SD(u, v, q)` (Definition 6 over MBRs, §6).
    f_plus_sd,
    Operator::FPlusSd
);
