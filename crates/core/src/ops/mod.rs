//! The spatial dominance operators (§2, §5.1).
//!
//! * [`Operator`] selects among S-SD, SS-SD, P-SD, F-SD and F⁺-SD;
//! * [`dominates`] runs the configured dominance check between two objects
//!   of a [`Database`] with shared caching;
//! * `s_sd` / `ss_sd` / `p_sd` / `f_sd` / `f_plus_sd` are standalone
//!   convenience wrappers over raw objects.

mod fsd;
mod level;
mod psd;
pub mod sphere;
mod ssd;
mod sssd;

use crate::cache::DominanceCache;
use crate::config::{FilterConfig, Stats};
use crate::db::Database;
use crate::query::PreparedQuery;
use osd_uncertain::UncertainObject;

pub use psd::peer_network_flow;
pub use sphere::{enclosing_ball, sphere_validate};

/// The spatial dominance operators, ordered from strongest dominance
/// condition (fewest dominations, most candidates) to weakest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Full spatial dominance on MBRs (Emrich et al. \[16\]) — the F⁺-SD
    /// baseline of §6.
    FPlusSd,
    /// Full spatial dominance on instances (§1, §6).
    FSd,
    /// Peer spatial dominance (Definition 5) — optimal w.r.t. N1 ∪ N2 ∪ N3.
    PSd,
    /// Strict stochastic spatial dominance (Definition 3) — optimal w.r.t.
    /// N1 ∪ N2.
    SsSd,
    /// Stochastic spatial dominance (Definition 2) — optimal w.r.t. N1.
    SSd,
}

impl Operator {
    /// All five operators in the paper's presentation order
    /// (SSD, SSSD, PSD, FSD, F⁺SD).
    pub const ALL: [Operator; 5] = [
        Operator::SSd,
        Operator::SsSd,
        Operator::PSd,
        Operator::FSd,
        Operator::FPlusSd,
    ];

    /// The label used in the paper's figures (§6 evaluation).
    pub fn label(&self) -> &'static str {
        match self {
            Operator::SSd => "SSD",
            Operator::SsSd => "SSSD",
            Operator::PSd => "PSD",
            Operator::FSd => "FSD",
            Operator::FPlusSd => "F+SD",
        }
    }
}

/// Checks whether object `u` dominates object `v` w.r.t. `query` under
/// `op` — the `SD(U, V, Q)` dispatch over Definitions 2–6 of the paper —
/// using the configured filters and the shared per-query `cache`.
///
/// With the `strict-invariants` feature the result is cross-checked
/// against the cover chain of Theorem 2 on every call.
#[allow(clippy::too_many_arguments)] // mirrors SD(U, V, Q) plus the check context
pub fn dominates(
    op: Operator,
    db: &Database,
    u: usize,
    v: usize,
    query: &PreparedQuery,
    cfg: &FilterConfig,
    cache: &mut DominanceCache,
    stats: &mut Stats,
) -> bool {
    debug_assert_ne!(u, v, "an object is never checked against itself");
    stats.dominance_checks += 1;
    let result = raw_check(op, db, u, v, query, cfg, cache, stats);
    #[cfg(feature = "strict-invariants")]
    audit_cover_chain(op, result, db, u, v, query, cfg, cache);
    result
}

/// The undecorated per-operator dispatch (no stats bump, no audit) —
/// shared by [`dominates`] and the `strict-invariants` cover-chain audit.
#[allow(clippy::too_many_arguments)] // mirrors SD(U, V, Q) plus the check context
fn raw_check(
    op: Operator,
    db: &Database,
    u: usize,
    v: usize,
    query: &PreparedQuery,
    cfg: &FilterConfig,
    cache: &mut DominanceCache,
    stats: &mut Stats,
) -> bool {
    match op {
        Operator::SSd => ssd::check(db, u, v, query, cfg, cache, stats),
        Operator::SsSd => sssd::check(db, u, v, query, cfg, cache, stats),
        Operator::PSd => psd::check(db, u, v, query, cfg, cache, stats),
        Operator::FSd => fsd::check(db, u, v, query, cfg, cache, stats),
        Operator::FPlusSd => {
            // MBR-level antisymmetry guard: mutual MBR dominance only occurs
            // for exactly-tied configurations (equidistant degenerate boxes),
            // where neither object should exclude the other — the same
            // equal-twin rationale as the instance-level guard in `fsd`.
            stats.mbr_checks += 2;
            osd_geom::mbr_dominates(db.object(u).mbr(), db.object(v).mbr(), query.mbr())
                && !osd_geom::mbr_dominates(db.object(v).mbr(), db.object(u).mbr(), query.mbr())
        }
    }
}

/// Cover-chain audit (Theorem 2): `F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD` — a
/// domination under a stronger operator must also hold under the next
/// weaker one. Cross-checked on small inputs only (the weaker check costs
/// up to a flow solve), via `debug_assert!` so release builds pay nothing
/// even with the feature on.
#[cfg(feature = "strict-invariants")]
#[allow(clippy::too_many_arguments)] // mirrors the check context it audits
fn audit_cover_chain(
    op: Operator,
    result: bool,
    db: &Database,
    u: usize,
    v: usize,
    query: &PreparedQuery,
    cfg: &FilterConfig,
    cache: &mut DominanceCache,
) {
    const MAX_AUDIT_INSTANCES: usize = 8;
    if !result
        || db.object(u).len() > MAX_AUDIT_INSTANCES
        || db.object(v).len() > MAX_AUDIT_INSTANCES
        || query.len() > MAX_AUDIT_INSTANCES
    {
        return;
    }
    // F⁺-SD is the MBR-level baseline, outside the Theorem 2 chain.
    let weaker = match op {
        Operator::FPlusSd | Operator::SSd => return,
        Operator::FSd => Operator::PSd,
        Operator::PSd => Operator::SsSd,
        Operator::SsSd => Operator::SSd,
    };
    let mut audit_stats = Stats::default();
    let weaker_holds = raw_check(weaker, db, u, v, query, cfg, cache, &mut audit_stats);
    debug_assert!(
        weaker_holds,
        "cover chain (Theorem 2) violated: {op:?} dominates u={u}, v={v} but {weaker:?} does not"
    );
}

/// Cover-based validation (Theorem 4), shared by the strict operators: the
/// *strict* MBR dominance test guarantees `U_Q ≠ V_Q` on top of full spatial
/// dominance, so it validates S-SD, SS-SD and P-SD exactly.
pub(crate) fn validate_mbr(
    db: &Database,
    u: usize,
    v: usize,
    query: &PreparedQuery,
    stats: &mut Stats,
) -> bool {
    stats.mbr_checks += 1;
    osd_geom::mbr_dominates_strict(db.object(u).mbr(), db.object(v).mbr(), query.mbr())
}

/// Strictness guard for the exact dominance paths: Definitions 2/3/5
/// additionally require `U_Q ≠ V_Q`. Only evaluated on the "dominates"
/// path, so the extra distribution build amortises to at most one per
/// discarded object.
pub(crate) fn strict_guard(
    db: &Database,
    u: usize,
    v: usize,
    query: &PreparedQuery,
    cache: &mut DominanceCache,
    stats: &mut Stats,
) -> bool {
    let du = cache.dist_q(db, query, u, stats);
    let dv = cache.dist_q(db, query, v, stats);
    stats.instance_comparisons += du.support_size().min(dv.support_size()) as u64;
    !du.approx_eq(&dv, osd_uncertain::CDF_EPS)
}

macro_rules! standalone {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(u: &UncertainObject, v: &UncertainObject, q: &UncertainObject) -> bool {
            let db = Database::new(vec![u.clone(), v.clone()]);
            let query = PreparedQuery::new(q.clone());
            let mut cache = DominanceCache::new(2);
            let mut stats = Stats::default();
            dominates($op, &db, 0, 1, &query, &FilterConfig::all(), &mut cache, &mut stats)
        }
    };
}

standalone!(
    /// Standalone stochastic spatial dominance check: `S-SD(u, v, q)` (Definition 2).
    s_sd,
    Operator::SSd
);
standalone!(
    /// Standalone strict stochastic spatial dominance check: `SS-SD(u, v, q)` (Definition 3).
    ss_sd,
    Operator::SsSd
);
standalone!(
    /// Standalone peer spatial dominance check: `P-SD(u, v, q)` (Definition 5).
    p_sd,
    Operator::PSd
);
standalone!(
    /// Standalone instance-level full spatial dominance check: `F-SD(u, v, q)` (Definition 6).
    f_sd,
    Operator::FSd
);
standalone!(
    /// Standalone MBR-level full spatial dominance check: `F⁺-SD(u, v, q)` (Definition 6 over MBRs, §6).
    f_plus_sd,
    Operator::FPlusSd
);
