//! The instance-level F-SD dominance check (§1, implemented per §6).
//!
//! `F-SD(U, V, Q)` iff `δ(u, q) ≤ δ(v, q)` for every `u ∈ U`, `v ∈ V`,
//! `q ∈ Q` — equivalently `δ_max(q, U) ≤ δ_min(q, V)` per query instance.
//! Only the convex-hull vertices of `Q` need checking (same half-space
//! argument as P-SD), and each bound is answered by the object's local
//! R-tree: a furthest-neighbour search on `U` and a nearest-neighbour
//! search on `V`.
//!
//! The paper's F-SD carries no `U_Q ≠ V_Q` side condition, which makes the
//! literal Definition 6 drop *both* members of an exactly-tied pair
//! (mutual domination) — leaving the candidate set without any
//! representative of the tied optimum. We therefore apply the same
//! equal-distribution guard as the strict operators: an object never
//! dominates its exact distributional twin. On continuous data (no exact
//! ties) this is observationally identical to the paper.

use crate::ctx::CheckCtx;
use osd_geom::mbr_dominates;
use osd_obs::{Counter, Phase, PhaseTimer};

pub(crate) fn check(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    let db = ctx.db;
    let query = ctx.query;
    if ctx.cfg.mbr_validation {
        ctx.stats.mbr_checks += 1;
        if mbr_dominates(db.object(u).mbr(), db.object(v).mbr(), query.mbr()) {
            return ctx.strict_guard(u, v);
        }
    }
    let pts = query.eval_points(ctx.cfg.geometric);
    let tree_u = db.local_tree(u);
    let tree_v = db.local_tree(v);
    for q in pts {
        // Cheap MBR bounds first: if even the boxes separate, skip the
        // tree searches for this query instance.
        ctx.stats.instance_comparisons += 2;
        let max_u_bound = db.object(u).mbr().max_dist_point(q);
        let min_v_bound = db.object(v).mbr().min_dist_point(q);
        if max_u_bound <= min_v_bound {
            continue;
        }
        // Objects are non-empty, so both searches return a hit; fall back to
        // the (conservative) MBR bounds if a tree were ever empty. The
        // local-tree searches are the traversal primitives of this check,
        // so they count as *rtree-descent* work.
        let timer = PhaseTimer::start(Phase::RtreeDescent);
        let mut visits = 0u64;
        let d_max_u = tree_u
            .furthest_counting(q, &mut visits)
            .map_or(max_u_bound, |(_, d)| d);
        let d_min_v = tree_v
            .nearest_counting(q, &mut visits)
            .map_or(min_v_bound, |(_, d)| d);
        ctx.stats.rtree_nodes_visited += visits;
        ctx.metrics.incr_by(Counter::RtreeNodeVisits, visits);
        ctx.metrics.record(timer);
        ctx.stats.instance_comparisons += (db.object(u).len() + db.object(v).len()) as u64;
        if d_max_u > d_min_v {
            return false;
        }
    }
    ctx.strict_guard(u, v)
}
