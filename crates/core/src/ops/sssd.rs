//! The SS-SD dominance check (Definition 3, §5.1.1).
//!
//! `SS-SD(U, V, Q)` iff `U_q ⪯_st V_q` for **every** query instance `q`,
//! and `U_Q ≠ V_Q`. One merged scan per query instance, with:
//!
//! * cover-based validation via strict MBR dominance (Theorem 4);
//! * statistic-based pruning per query instance (Theorem 11);
//! * cover-based pruning through S-SD: `¬S-SD(U,V,Q) ⇒ ¬SS-SD(U,V,Q)`
//!   (SS-SD ⊂ S-SD, Theorem 2) — the aggregate statistics of `U_Q` give a
//!   cheap necessary condition before the per-instance scans run.

use crate::ctx::CheckCtx;
use osd_uncertain::stochastic::stochastically_dominates_counted;

pub(crate) fn check(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    if ctx.cfg.mbr_validation && ctx.validate_mbr(u, v) {
        return true;
    }
    if ctx.cfg.pruning {
        // Cover-based pruning via the S-SD statistics: SS-SD implies S-SD,
        // so any inverted aggregate statistic of U_Q vs V_Q disproves SS-SD.
        let (min_u, mean_u, max_u) = ctx.agg(u);
        let (min_v, mean_v, max_v) = ctx.agg(v);
        ctx.stats.instance_comparisons += 3;
        if min_u > min_v || mean_u > mean_v || max_u > max_v {
            return false;
        }
        // Per-query-instance statistic pruning.
        let agg_u = ctx.per_q_agg(u);
        let agg_v = ctx.per_q_agg(v);
        ctx.stats.instance_comparisons += 3 * agg_u.len() as u64;
        for (a, b) in agg_u.iter().zip(agg_v.iter()) {
            if a.0 > b.0 || a.1 > b.1 || a.2 > b.2 {
                return false;
            }
        }
    }
    // Level-by-level bounds per query instance (§5.1.1).
    if ctx.cfg.level_by_level {
        if let Some(decision) =
            super::level::try_decide(u, v, super::level::Granularity::PerInstance, ctx)
        {
            return decision;
        }
    }
    // Full check: one scan per query instance.
    let du = ctx.per_q(u);
    let dv = ctx.per_q(v);
    for (x, y) in du.iter().zip(dv.iter()) {
        if !stochastically_dominates_counted(x, y, &mut ctx.stats.instance_comparisons) {
            return false;
        }
    }
    ctx.strict_guard(u, v)
}
