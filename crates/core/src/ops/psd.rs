//! The P-SD dominance check (Definition 5, §5.1.2).
//!
//! `P-SD(U, V, Q)` holds iff there is a match `M_{U,V}` with
//! `t.u ⪯_Q t.v` for every tuple, and `U_Q ≠ V_Q`. By Theorem 12 the match
//! exists iff the bipartite network — source→`u` with capacity `p(u)`,
//! `v`→sink with capacity `p(v)`, `u`→`v` with capacity ∞ iff `u ⪯_Q v` —
//! carries a max-flow of value 1 (here: the fixed-point total `SCALE`).
//!
//! Filter stack, in order:
//! 1. cover-based validation via strict MBR dominance (Theorem 4);
//! 2. cover-based pruning through S-SD and SS-SD (`P-SD ⊂ SS-SD ⊂ S-SD`);
//! 3. geometric early reject: an instance of `V` inside `CH(Q)` can only be
//!    matched by a coincident instance of `U`;
//! 4. level-by-level pruning/validation over local R-tree nodes with the
//!    optimistic (`G⁺`) and pessimistic (`G⁻`) networks;
//! 5. the exact instance network, built either by nested `⪯_Q` scans over
//!    the hull vertices or by R-tree range queries in distance space.

use crate::config::Stats;
use crate::ctx::{CheckCtx, CheckScratch};
use osd_flow::MaxFlow;
use osd_geom::{dist2_rows_batch, dist2_slice, mbr_dominates, mbr_dominates_strict, Mbr, Point};
use osd_obs::{Phase, PhaseTimer};
use osd_uncertain::{UncertainObject, SCALE};

/// Hull sizes up to this use the distance-space R-tree strategy for network
/// construction; larger hulls fall back to direct scans (high-dimensional
/// R-trees stop paying off).
const MAX_MAPPED_DIM: usize = 8;

pub(crate) fn check(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    // The shared read-only environment outlives the `&mut ctx` borrow, so
    // copy the references out once instead of re-borrowing through `ctx`.
    let db = ctx.db;
    let query = ctx.query;

    // 1. Cover-based validation (Theorem 4).
    if ctx.cfg.mbr_validation && ctx.validate_mbr(u, v) {
        return true;
    }

    // 2. Statistic-based pruning (Theorem 11, via the cover chain): P-SD
    //    implies S-SD and SS-SD, so any inverted min/mean/max statistic of
    //    the (cached) distance distributions disproves P-SD at the cost of
    //    a few comparisons.
    if ctx.cfg.pruning {
        let (min_u, mean_u, max_u) = ctx.agg(u);
        let (min_v, mean_v, max_v) = ctx.agg(v);
        ctx.stats.instance_comparisons += 3;
        if min_u > min_v || mean_u > mean_v || max_u > max_v {
            return false;
        }
        let agg_u = ctx.per_q_agg(u);
        let agg_v = ctx.per_q_agg(v);
        ctx.stats.instance_comparisons += 3 * agg_u.len() as u64;
        for (a, b) in agg_u.iter().zip(agg_v.iter()) {
            if a.0 > b.0 || a.1 > b.1 || a.2 > b.2 {
                return false;
            }
        }
    }

    // 3. Geometric early reject: instances of V inside CH(Q) are only
    //    dominated by coincident instances of U.
    if ctx.cfg.geometric {
        let blocked = ctx.in_hull_instances(v);
        if !blocked.is_empty() {
            let uo = db.object(u);
            let dim = uo.dim();
            for &vi in blocked.iter() {
                let vp = db.object(v).row(vi);
                ctx.stats.instance_comparisons += uo.len() as u64;
                // Coincidence is exact coordinate equality (same semantics
                // as the boxed `Point` comparison this replaces).
                let coincident = uo.coords().chunks_exact(dim).any(|ui| ui == vp);
                if !coincident {
                    return false;
                }
            }
        }
    }

    // 4. Level-by-level pruning/validation over local R-tree nodes
    //    (recorded under the *level-prune* phase; the embedded flow solves
    //    additionally record *refine* samples).
    if ctx.cfg.level_by_level {
        let timer = PhaseTimer::start(Phase::LevelPrune);
        let decision = level_filter(u, v, ctx);
        ctx.metrics.record(timer);
        if let Some(decided) = decision {
            return decided;
        }
    }

    // 5. Cover-based pruning with the full scans: ¬S-SD ⇒ ¬P-SD and
    //    ¬SS-SD ⇒ ¬P-SD (Theorem 2). Run after the cheaper filters so the
    //    O(m|Q|) scans only pay when everything else was inconclusive but
    //    before the O(m²) exact network.
    if ctx.cfg.pruning {
        if !super::ssd::check(u, v, ctx) {
            return false;
        }
        if !super::sssd::check(u, v, ctx) {
            return false;
        }
    }

    // 6. Exact instance-level network (Theorem 12).
    let quanta_u = ctx.quanta(u);
    let quanta_v = ctx.quanta(v);
    let pts = query.eval_points(ctx.cfg.geometric);
    let uo = db.object(u);
    let vo = db.object(v);

    let saturated = if ctx.cfg.geometric && query.hull().len() <= MAX_MAPPED_DIM {
        // Distance-space strategy: u ⪯_Q v ⟺ u's image is coordinate-wise
        // below v's image; answered per v by a containment range query.
        let mapped_u = ctx.mapped(u);
        let mapped_v = ctx.mapped(v);
        let k = query.hull().len();
        let mut edges = Vec::new();
        for (j, v_img) in mapped_v.0.iter().enumerate() {
            let range = Mbr::new(vec![0.0; k], v_img.coords());
            let hits = mapped_u.1.range_contained(&range);
            ctx.stats.instance_comparisons += (hits.len() + 1) as u64;
            edges.extend(hits.into_iter().map(|&i| (i, j)));
        }
        saturates(&quanta_u, &quanta_v, &edges, ctx)
    } else if ctx.cfg.kernels {
        // Blocked strategy: both δ² tables are filled once with the row
        // kernels, then the nested ⪯_Q scan reads the tables with the
        // same per-q comparison order and early exit as the scalar path.
        // All buffers live in the per-query scratch; the `&mut ctx`
        // re-borrow in `saturates` forces the take/restore dance.
        let mut edges = std::mem::take(&mut ctx.scratch.edges);
        let mut du = std::mem::take(&mut ctx.scratch.dist_u);
        let mut dv = std::mem::take(&mut ctx.scratch.dist_v);
        exact_edges_blocked(
            uo.coords(),
            vo.coords(),
            uo.dim(),
            pts,
            &mut du,
            &mut dv,
            &mut edges,
            &mut ctx.stats,
        );
        let sat = saturates(&quanta_u, &quanta_v, &edges, ctx);
        ctx.scratch.edges = edges;
        ctx.scratch.dist_u = du;
        ctx.scratch.dist_v = dv;
        sat
    } else {
        let dim = uo.dim();
        let mut edges = Vec::new();
        for (i, ui) in uo.coords().chunks_exact(dim).enumerate() {
            for (j, vj) in vo.coords().chunks_exact(dim).enumerate() {
                if closer_counted(ui, vj, pts, &mut ctx.stats) {
                    edges.push((i, j));
                }
            }
        }
        saturates(&quanta_u, &quanta_v, &edges, ctx)
    };

    saturated && ctx.strict_guard(u, v)
}

// alloc-free: begin
/// Blocked construction of the exact Theorem-12 edge set: fills the two
/// query-major distance tables `δ²(u_i, q)` / `δ²(v_j, q)` with the row
/// kernels, then tests `u_i ⪯_Q v_j` by table lookups. Comparison order,
/// early exit and `instance_comparisons` accounting match the scalar
/// [`closer_counted`] scan exactly; the distance evaluations themselves are
/// uncounted in both strategies. Reuses caller buffers; allocation-free
/// beyond their amortised growth.
#[allow(clippy::too_many_arguments)]
fn exact_edges_blocked(
    u_rows: &[f64],
    v_rows: &[f64],
    dim: usize,
    pts: &[Point],
    du: &mut Vec<f64>,
    dv: &mut Vec<f64>,
    edges: &mut Vec<(usize, usize)>,
    stats: &mut Stats,
) {
    let m_u = u_rows.len() / dim;
    let m_v = v_rows.len() / dim;
    du.clear();
    du.resize(pts.len() * m_u, 0.0);
    dv.clear();
    dv.resize(pts.len() * m_v, 0.0);
    for (qi, q) in pts.iter().enumerate() {
        dist2_rows_batch(u_rows, dim, q.coords(), &mut du[qi * m_u..(qi + 1) * m_u]);
        dist2_rows_batch(v_rows, dim, q.coords(), &mut dv[qi * m_v..(qi + 1) * m_v]);
    }
    edges.clear();
    for i in 0..m_u {
        for j in 0..m_v {
            let mut closer = true;
            for qi in 0..pts.len() {
                stats.instance_comparisons += 1;
                if du[qi * m_u + i] > dv[qi * m_v + j] {
                    closer = false;
                    break;
                }
            }
            if closer {
                edges.push((i, j));
            }
        }
    }
}
// alloc-free: end

/// Step 4 of [`check`]: the level-by-level descent over the two local
/// R-trees with the optimistic (`G⁺`) / pessimistic (`G⁻`) group networks.
/// `Some(decided)` short-circuits the check; `None` is inconclusive.
fn level_filter(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> Option<bool> {
    if ctx.cfg.kernels {
        // The reusable edge buffer lives in the context scratch, but
        // `saturates` needs `&mut ctx` too — take it out for the descent
        // and put it back after.
        let mut edges = std::mem::take(&mut ctx.scratch.edges);
        let decision = level_filter_snapshot(u, v, ctx, &mut edges);
        ctx.scratch.edges = edges;
        return decision;
    }
    let db = ctx.db;
    let query = ctx.query;
    let quanta_u = ctx.quanta(u);
    let quanta_v = ctx.quanta(v);
    let tree_u = db.local_tree(u);
    let tree_v = db.local_tree(v);
    let depth = tree_u
        .height()
        .unwrap_or(0)
        .max(tree_v.height().unwrap_or(0));
    for level in 1..=depth {
        let gu = tree_u.level_groups(level);
        let gv = tree_v.level_groups(level);
        let caps_u: Vec<u64> = gu
            .iter()
            .map(|(_, items)| items.iter().map(|&&i| quanta_u[i]).sum())
            .collect();
        let caps_v: Vec<u64> = gv
            .iter()
            .map(|(_, items)| items.iter().map(|&&i| quanta_v[i]).sum())
            .collect();
        ctx.stats.mbr_checks += (gu.len() * gv.len()) as u64;

        // Pessimistic network G⁻: group-level full dominance implies
        // every contained instance pair relates; flow 1 validates P-SD.
        let val_edges = group_edges(&gu, &gv, |mu, mv| mbr_dominates(mu, mv, query.mbr()));
        if !val_edges.is_empty() && saturates(&caps_u, &caps_v, &val_edges, ctx) {
            return Some(ctx.strict_guard(u, v));
        }

        // Optimistic network G⁺: an edge survives unless V's group
        // *strictly* dominates U's (which forbids even tie edges);
        // failing to saturate disproves P-SD.
        let prune_edges = group_edges(&gu, &gv, |mu, mv| {
            !mbr_dominates_strict(mv, mu, query.mbr())
        });
        if !saturates(&caps_u, &caps_v, &prune_edges, ctx) {
            return Some(false);
        }
    }
    None
}

/// The memoized twin of the scalar [`level_filter`]: group MBRs and
/// fixed-point capacities come from the per-object [`crate::cache::LevelSnapshot`]
/// (built once per traversal, groups and caps in a single pass) instead of
/// being re-derived for every `(u, v)` pair, and both group networks are
/// built into one reusable edge buffer. Descent order, `mbr_checks`
/// accounting, edge enumeration order and flow results are identical to the
/// scalar path.
fn level_filter_snapshot(
    u: usize,
    v: usize,
    ctx: &mut CheckCtx<'_>,
    edges: &mut Vec<(usize, usize)>,
) -> Option<bool> {
    let query = ctx.query;
    let snap_u = ctx.level_snapshot(u);
    let snap_v = ctx.level_snapshot(v);
    let depth = snap_u.height().max(snap_v.height());
    for level in 1..=depth {
        let lu = snap_u.level(level);
        let lv = snap_v.level(level);
        ctx.stats.mbr_checks += (lu.len() * lv.len()) as u64;

        // Pessimistic network G⁻ (see the scalar descent above).
        group_edges_into(&lu.mbrs, &lv.mbrs, edges, |mu, mv| {
            mbr_dominates(mu, mv, query.mbr())
        });
        if !edges.is_empty() && saturates(&lu.caps, &lv.caps, edges, ctx) {
            return Some(ctx.strict_guard(u, v));
        }

        // Optimistic network G⁺.
        group_edges_into(&lu.mbrs, &lv.mbrs, edges, |mu, mv| {
            !mbr_dominates_strict(mv, mu, query.mbr())
        });
        if !saturates(&lu.caps, &lv.caps, edges, ctx) {
            return Some(false);
        }
    }
    None
}

/// `δ(u, q) ≤ δ(v, q)` for every evaluation point, with comparison counting.
/// Operates on borrowed coordinate rows straight out of the instance store.
fn closer_counted(u: &[f64], v: &[f64], pts: &[Point], stats: &mut Stats) -> bool {
    for q in pts {
        stats.instance_comparisons += 1;
        if dist2_slice(u, q.coords()) > dist2_slice(v, q.coords()) {
            return false;
        }
    }
    true
}

/// Edges between group lists under `relate`.
fn group_edges<T>(
    gu: &[(Mbr, Vec<T>)],
    gv: &[(Mbr, Vec<T>)],
    relate: impl Fn(&Mbr, &Mbr) -> bool,
) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for (i, (mu, _)) in gu.iter().enumerate() {
        for (j, (mv, _)) in gv.iter().enumerate() {
            if relate(mu, mv) {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// [`group_edges`] over bare MBR lists into a reusable buffer — the same
/// enumeration order, zero allocations past the buffer's amortised growth.
fn group_edges_into(
    gu: &[Mbr],
    gv: &[Mbr],
    edges: &mut Vec<(usize, usize)>,
    relate: impl Fn(&Mbr, &Mbr) -> bool,
) {
    edges.clear();
    for (i, mu) in gu.iter().enumerate() {
        for (j, mv) in gv.iter().enumerate() {
            if relate(mu, mv) {
                edges.push((i, j));
            }
        }
    }
}

/// Runs the bipartite max-flow: `true` iff all `SCALE` units route.
/// Recorded under the *refine* phase — this is the exact P-SD machinery
/// of Theorem 12.
fn saturates(
    caps_u: &[u64],
    caps_v: &[u64],
    edges: &[(usize, usize)],
    ctx: &mut CheckCtx<'_>,
) -> bool {
    let timer = PhaseTimer::start(Phase::Refine);
    let named = osd_obs::Span::enter("flow-solve");
    let span = ctx.trace.open("flow");
    let saturated = if ctx.cfg.kernels {
        saturates_scratch(caps_u, caps_v, edges, &mut ctx.scratch, &mut ctx.stats)
    } else {
        saturates_alloc(caps_u, caps_v, edges, &mut ctx.stats)
    };
    if span != osd_obs::SpanId::NONE {
        ctx.trace
            .attr(span, "edges", osd_obs::AttrValue::U64(edges.len() as u64));
        ctx.trace
            .attr(span, "saturated", osd_obs::AttrValue::U64(saturated as u64));
    }
    ctx.trace.close(span);
    ctx.metrics.record_span(named);
    ctx.metrics.record(timer);
    saturated
}

/// The allocating reference implementation of the Theorem-12 saturation
/// test: fresh bitmap, fresh Dinic network per call.
fn saturates_alloc(
    caps_u: &[u64],
    caps_v: &[u64],
    edges: &[(usize, usize)],
    stats: &mut Stats,
) -> bool {
    // Cheap necessary condition: every positive-mass u needs an edge.
    let mut has_edge = vec![false; caps_u.len()];
    for &(i, _) in edges {
        has_edge[i] = true;
    }
    if has_edge
        .iter()
        .zip(caps_u.iter())
        .any(|(&h, &c)| c > 0 && !h)
    {
        return false;
    }
    stats.flow_runs += 1;
    let nu = caps_u.len();
    let nv = caps_v.len();
    let s = nu + nv;
    let t = s + 1;
    let mut g = MaxFlow::new(nu + nv + 2);
    for (i, &c) in caps_u.iter().enumerate() {
        g.add_edge(s, i, c);
    }
    for (j, &c) in caps_v.iter().enumerate() {
        g.add_edge(nu + j, t, c);
    }
    for &(i, j) in edges {
        g.add_edge(i, nu + j, u64::MAX / 4);
    }
    g.max_flow(s, t) == SCALE
}

// alloc-free: begin
/// The arena twin of [`saturates_alloc`]: identical network, identical
/// `flow_runs` accounting, but the bitmap and the Dinic graph are reset in
/// place so repeated checks allocate O(1) amortised. Dinic is deterministic
/// in the edge insertion order, which both builders share, so the flow
/// value (and hence the decision) is identical.
fn saturates_scratch(
    caps_u: &[u64],
    caps_v: &[u64],
    edges: &[(usize, usize)],
    scratch: &mut CheckScratch,
    stats: &mut Stats,
) -> bool {
    // Cheap necessary condition: every positive-mass u needs an edge.
    let has_edge = &mut scratch.has_edge;
    has_edge.clear();
    has_edge.resize(caps_u.len(), false);
    for &(i, _) in edges {
        has_edge[i] = true;
    }
    if has_edge
        .iter()
        .zip(caps_u.iter())
        .any(|(&h, &c)| c > 0 && !h)
    {
        return false;
    }
    stats.flow_runs += 1;
    let nu = caps_u.len();
    let nv = caps_v.len();
    let s = nu + nv;
    let t = s + 1;
    let g = &mut scratch.flow;
    g.reset(nu + nv + 2);
    for (i, &c) in caps_u.iter().enumerate() {
        g.add_edge(s, i, c);
    }
    for (j, &c) in caps_v.iter().enumerate() {
        g.add_edge(nu + j, t, c);
    }
    for &(i, j) in edges {
        g.add_edge(i, nu + j, u64::MAX / 4);
    }
    g.max_flow(s, t) == SCALE
}
// alloc-free: end

/// Builds the exact Theorem-12 network for two raw objects and returns
/// `(max_flow, SCALE)` — exposed so tests can exercise the reduction
/// directly.
pub fn peer_network_flow(
    u: &UncertainObject,
    v: &UncertainObject,
    query: &UncertainObject,
) -> (u64, u64) {
    let q_pts: Vec<Point> = query.instances().iter().map(|i| i.point.clone()).collect();
    let quanta_u =
        osd_uncertain::quantize(&u.instances().iter().map(|i| i.prob).collect::<Vec<_>>());
    let quanta_v =
        osd_uncertain::quantize(&v.instances().iter().map(|i| i.prob).collect::<Vec<_>>());
    let nu = u.len();
    let nv = v.len();
    let s = nu + nv;
    let t = s + 1;
    let mut g = MaxFlow::new(nu + nv + 2);
    for (i, &c) in quanta_u.iter().enumerate() {
        g.add_edge(s, i, c);
    }
    for (j, &c) in quanta_v.iter().enumerate() {
        g.add_edge(nu + j, t, c);
    }
    for (i, ui) in u.instances().iter().enumerate() {
        for (j, vj) in v.instances().iter().enumerate() {
            if osd_geom::closer_to_all(&ui.point, &vj.point, &q_pts) {
                g.add_edge(i, nu + j, u64::MAX / 4);
            }
        }
    }
    (g.max_flow(s, t), SCALE)
}
