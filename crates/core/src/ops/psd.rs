//! The P-SD dominance check (Definition 5, §5.1.2).
//!
//! `P-SD(U, V, Q)` holds iff there is a match `M_{U,V}` with
//! `t.u ⪯_Q t.v` for every tuple, and `U_Q ≠ V_Q`. By Theorem 12 the match
//! exists iff the bipartite network — source→`u` with capacity `p(u)`,
//! `v`→sink with capacity `p(v)`, `u`→`v` with capacity ∞ iff `u ⪯_Q v` —
//! carries a max-flow of value 1 (here: the fixed-point total `SCALE`).
//!
//! Filter stack, in order:
//! 1. cover-based validation via strict MBR dominance (Theorem 4);
//! 2. cover-based pruning through S-SD and SS-SD (`P-SD ⊂ SS-SD ⊂ S-SD`);
//! 3. geometric early reject: an instance of `V` inside `CH(Q)` can only be
//!    matched by a coincident instance of `U`;
//! 4. level-by-level pruning/validation over local R-tree nodes with the
//!    optimistic (`G⁺`) and pessimistic (`G⁻`) networks;
//! 5. the exact instance network, built either by nested `⪯_Q` scans over
//!    the hull vertices or by R-tree range queries in distance space.

use crate::config::Stats;
use crate::ctx::CheckCtx;
use osd_flow::MaxFlow;
use osd_geom::{dist2_slice, mbr_dominates, mbr_dominates_strict, Mbr, Point};
use osd_obs::{Phase, PhaseTimer};
use osd_uncertain::{UncertainObject, SCALE};

/// Hull sizes up to this use the distance-space R-tree strategy for network
/// construction; larger hulls fall back to direct scans (high-dimensional
/// R-trees stop paying off).
const MAX_MAPPED_DIM: usize = 8;

pub(crate) fn check(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> bool {
    // The shared read-only environment outlives the `&mut ctx` borrow, so
    // copy the references out once instead of re-borrowing through `ctx`.
    let db = ctx.db;
    let query = ctx.query;

    // 1. Cover-based validation (Theorem 4).
    if ctx.cfg.mbr_validation && ctx.validate_mbr(u, v) {
        return true;
    }

    // 2. Statistic-based pruning (Theorem 11, via the cover chain): P-SD
    //    implies S-SD and SS-SD, so any inverted min/mean/max statistic of
    //    the (cached) distance distributions disproves P-SD at the cost of
    //    a few comparisons.
    if ctx.cfg.pruning {
        let (min_u, mean_u, max_u) = ctx.agg(u);
        let (min_v, mean_v, max_v) = ctx.agg(v);
        ctx.stats.instance_comparisons += 3;
        if min_u > min_v || mean_u > mean_v || max_u > max_v {
            return false;
        }
        let agg_u = ctx.per_q_agg(u);
        let agg_v = ctx.per_q_agg(v);
        ctx.stats.instance_comparisons += 3 * agg_u.len() as u64;
        for (a, b) in agg_u.iter().zip(agg_v.iter()) {
            if a.0 > b.0 || a.1 > b.1 || a.2 > b.2 {
                return false;
            }
        }
    }

    // 3. Geometric early reject: instances of V inside CH(Q) are only
    //    dominated by coincident instances of U.
    if ctx.cfg.geometric {
        let blocked = ctx.in_hull_instances(v);
        if !blocked.is_empty() {
            let uo = db.object(u);
            let dim = uo.dim();
            for &vi in blocked.iter() {
                let vp = db.object(v).row(vi);
                ctx.stats.instance_comparisons += uo.len() as u64;
                // Coincidence is exact coordinate equality (same semantics
                // as the boxed `Point` comparison this replaces).
                let coincident = uo.coords().chunks_exact(dim).any(|ui| ui == vp);
                if !coincident {
                    return false;
                }
            }
        }
    }

    // 4. Level-by-level pruning/validation over local R-tree nodes
    //    (recorded under the *level-prune* phase; the embedded flow solves
    //    additionally record *refine* samples).
    if ctx.cfg.level_by_level {
        let timer = PhaseTimer::start(Phase::LevelPrune);
        let decision = level_filter(u, v, ctx);
        ctx.metrics.record(timer);
        if let Some(decided) = decision {
            return decided;
        }
    }

    // 5. Cover-based pruning with the full scans: ¬S-SD ⇒ ¬P-SD and
    //    ¬SS-SD ⇒ ¬P-SD (Theorem 2). Run after the cheaper filters so the
    //    O(m|Q|) scans only pay when everything else was inconclusive but
    //    before the O(m²) exact network.
    if ctx.cfg.pruning {
        if !super::ssd::check(u, v, ctx) {
            return false;
        }
        if !super::sssd::check(u, v, ctx) {
            return false;
        }
    }

    // 6. Exact instance-level network (Theorem 12).
    let quanta_u = ctx.quanta(u);
    let quanta_v = ctx.quanta(v);
    let pts = query.eval_points(ctx.cfg.geometric);
    let uo = db.object(u);
    let vo = db.object(v);

    let edges: Vec<(usize, usize)> = if ctx.cfg.geometric && query.hull().len() <= MAX_MAPPED_DIM {
        // Distance-space strategy: u ⪯_Q v ⟺ u's image is coordinate-wise
        // below v's image; answered per v by a containment range query.
        let mapped_u = ctx.mapped(u);
        let mapped_v = ctx.mapped(v);
        let k = query.hull().len();
        let mut edges = Vec::new();
        for (j, v_img) in mapped_v.0.iter().enumerate() {
            let range = Mbr::new(vec![0.0; k], v_img.coords());
            let hits = mapped_u.1.range_contained(&range);
            ctx.stats.instance_comparisons += (hits.len() + 1) as u64;
            edges.extend(hits.into_iter().map(|&i| (i, j)));
        }
        edges
    } else {
        let dim = uo.dim();
        let mut edges = Vec::new();
        for (i, ui) in uo.coords().chunks_exact(dim).enumerate() {
            for (j, vj) in vo.coords().chunks_exact(dim).enumerate() {
                if closer_counted(ui, vj, pts, &mut ctx.stats) {
                    edges.push((i, j));
                }
            }
        }
        edges
    };

    saturates(&quanta_u, &quanta_v, &edges, ctx) && ctx.strict_guard(u, v)
}

/// Step 4 of [`check`]: the level-by-level descent over the two local
/// R-trees with the optimistic (`G⁺`) / pessimistic (`G⁻`) group networks.
/// `Some(decided)` short-circuits the check; `None` is inconclusive.
fn level_filter(u: usize, v: usize, ctx: &mut CheckCtx<'_>) -> Option<bool> {
    let db = ctx.db;
    let query = ctx.query;
    let quanta_u = ctx.quanta(u);
    let quanta_v = ctx.quanta(v);
    let tree_u = db.local_tree(u);
    let tree_v = db.local_tree(v);
    let depth = tree_u
        .height()
        .unwrap_or(0)
        .max(tree_v.height().unwrap_or(0));
    for level in 1..=depth {
        let gu = tree_u.level_groups(level);
        let gv = tree_v.level_groups(level);
        let caps_u: Vec<u64> = gu
            .iter()
            .map(|(_, items)| items.iter().map(|&&i| quanta_u[i]).sum())
            .collect();
        let caps_v: Vec<u64> = gv
            .iter()
            .map(|(_, items)| items.iter().map(|&&i| quanta_v[i]).sum())
            .collect();
        ctx.stats.mbr_checks += (gu.len() * gv.len()) as u64;

        // Pessimistic network G⁻: group-level full dominance implies
        // every contained instance pair relates; flow 1 validates P-SD.
        let val_edges = group_edges(&gu, &gv, |mu, mv| mbr_dominates(mu, mv, query.mbr()));
        if !val_edges.is_empty() && saturates(&caps_u, &caps_v, &val_edges, ctx) {
            return Some(ctx.strict_guard(u, v));
        }

        // Optimistic network G⁺: an edge survives unless V's group
        // *strictly* dominates U's (which forbids even tie edges);
        // failing to saturate disproves P-SD.
        let prune_edges = group_edges(&gu, &gv, |mu, mv| {
            !mbr_dominates_strict(mv, mu, query.mbr())
        });
        if !saturates(&caps_u, &caps_v, &prune_edges, ctx) {
            return Some(false);
        }
    }
    None
}

/// `δ(u, q) ≤ δ(v, q)` for every evaluation point, with comparison counting.
/// Operates on borrowed coordinate rows straight out of the instance store.
fn closer_counted(u: &[f64], v: &[f64], pts: &[Point], stats: &mut Stats) -> bool {
    for q in pts {
        stats.instance_comparisons += 1;
        if dist2_slice(u, q.coords()) > dist2_slice(v, q.coords()) {
            return false;
        }
    }
    true
}

/// Edges between group lists under `relate`.
fn group_edges<T>(
    gu: &[(Mbr, Vec<T>)],
    gv: &[(Mbr, Vec<T>)],
    relate: impl Fn(&Mbr, &Mbr) -> bool,
) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for (i, (mu, _)) in gu.iter().enumerate() {
        for (j, (mv, _)) in gv.iter().enumerate() {
            if relate(mu, mv) {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// Runs the bipartite max-flow: `true` iff all `SCALE` units route.
/// Recorded under the *refine* phase — this is the exact P-SD machinery
/// of Theorem 12.
fn saturates(
    caps_u: &[u64],
    caps_v: &[u64],
    edges: &[(usize, usize)],
    ctx: &mut CheckCtx<'_>,
) -> bool {
    let timer = PhaseTimer::start(Phase::Refine);
    let saturated = saturates_inner(caps_u, caps_v, edges, &mut ctx.stats);
    ctx.metrics.record(timer);
    saturated
}

fn saturates_inner(
    caps_u: &[u64],
    caps_v: &[u64],
    edges: &[(usize, usize)],
    stats: &mut Stats,
) -> bool {
    // Cheap necessary condition: every positive-mass u needs an edge.
    let mut has_edge = vec![false; caps_u.len()];
    for &(i, _) in edges {
        has_edge[i] = true;
    }
    if has_edge
        .iter()
        .zip(caps_u.iter())
        .any(|(&h, &c)| c > 0 && !h)
    {
        return false;
    }
    stats.flow_runs += 1;
    let nu = caps_u.len();
    let nv = caps_v.len();
    let s = nu + nv;
    let t = s + 1;
    let mut g = MaxFlow::new(nu + nv + 2);
    for (i, &c) in caps_u.iter().enumerate() {
        g.add_edge(s, i, c);
    }
    for (j, &c) in caps_v.iter().enumerate() {
        g.add_edge(nu + j, t, c);
    }
    for &(i, j) in edges {
        g.add_edge(i, nu + j, u64::MAX / 4);
    }
    g.max_flow(s, t) == SCALE
}

/// Builds the exact Theorem-12 network for two raw objects and returns
/// `(max_flow, SCALE)` — exposed so tests can exercise the reduction
/// directly.
pub fn peer_network_flow(
    u: &UncertainObject,
    v: &UncertainObject,
    query: &UncertainObject,
) -> (u64, u64) {
    let q_pts: Vec<Point> = query.instances().iter().map(|i| i.point.clone()).collect();
    let quanta_u =
        osd_uncertain::quantize(&u.instances().iter().map(|i| i.prob).collect::<Vec<_>>());
    let quanta_v =
        osd_uncertain::quantize(&v.instances().iter().map(|i| i.prob).collect::<Vec<_>>());
    let nu = u.len();
    let nv = v.len();
    let s = nu + nv;
    let t = s + 1;
    let mut g = MaxFlow::new(nu + nv + 2);
    for (i, &c) in quanta_u.iter().enumerate() {
        g.add_edge(s, i, c);
    }
    for (j, &c) in quanta_v.iter().enumerate() {
        g.add_edge(nu + j, t, c);
    }
    for (i, ui) in u.instances().iter().enumerate() {
        for (j, vj) in v.instances().iter().enumerate() {
            if osd_geom::closer_to_all(&ui.point, &vj.point, &q_pts) {
                g.add_edge(i, nu + j, u64::MAX / 4);
            }
        }
    }
    (g.max_flow(s, t), SCALE)
}
