//! Hypersphere-based validation (the alternative approximation of
//! Long et al. \[25\], noted after Theorem 4: "filtering technique in \[25\]
//! may also be applied if objects are approximated by hyperspheres").
//!
//! Objects are approximated by their minimal enclosing balls; the
//! triangle-inequality sphere test then certifies full spatial dominance
//! of the underlying instance sets, which by Theorem 4 validates every SD
//! operator. The test is *sound but not tight* (Long et al.'s optimal
//! decision is their paper's contribution), so it is offered as an extra
//! validation primitive rather than wired into the default filter stack —
//! the MBR validation of \[16\] is tight and already the default.

use osd_geom::sphere::{min_enclosing_ball, sphere_dominates_sufficient, Sphere};
use osd_uncertain::UncertainObject;

/// The minimal enclosing ball of an object's instances (the hypersphere
/// approximation suggested after Theorem 4).
pub fn enclosing_ball(object: &UncertainObject) -> Sphere {
    let pts: Vec<_> = object.instances().iter().map(|i| i.point.clone()).collect();
    min_enclosing_ball(&pts)
}

/// Sphere-level validation: `true` certifies `F-SD(U, V, Q)` on the raw
/// instance sets (and hence, by Theorem 4, P-SD / SS-SD / S-SD except for
/// the measure-zero `U_Q = V_Q` tie, which strict callers must still
/// guard). `false` is inconclusive.
pub fn sphere_validate(u: &UncertainObject, v: &UncertainObject, q: &UncertainObject) -> bool {
    sphere_dominates_sufficient(&enclosing_ball(u), &enclosing_ball(v), &enclosing_ball(q))
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::ops::{f_sd, p_sd, s_sd, ss_sd};
    use osd_geom::Point;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn validation_implies_every_operator() {
        let q = obj(&[(0.0, 0.0), (1.0, 1.0)]);
        let u = obj(&[(0.5, 0.5), (1.0, 0.5)]);
        let v = obj(&[(40.0, 40.0), (41.0, 41.0)]);
        assert!(sphere_validate(&u, &v, &q));
        assert!(f_sd(&u, &v, &q));
        assert!(p_sd(&u, &v, &q));
        assert!(ss_sd(&u, &v, &q));
        assert!(s_sd(&u, &v, &q));
    }

    #[test]
    fn inconclusive_on_overlap() {
        let q = obj(&[(0.0, 0.0)]);
        let u = obj(&[(1.0, 0.0), (3.0, 0.0)]);
        let v = obj(&[(2.0, 0.0), (4.0, 0.0)]);
        assert!(!sphere_validate(&u, &v, &q));
    }

    /// The sphere test is strictly weaker than the exact MBR test on boxy
    /// data (it wraps the box corners into a bigger ball), so it must never
    /// fire when F-SD itself does not hold.
    #[test]
    fn soundness_spot_checks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut fired = 0;
        for _ in 0..200 {
            let mk = |rng: &mut StdRng, cx: f64, cy: f64, s: f64| {
                obj(&[
                    (cx + rng.gen_range(-s..s), cy + rng.gen_range(-s..s)),
                    (cx + rng.gen_range(-s..s), cy + rng.gen_range(-s..s)),
                ])
            };
            let (ux, uy) = (rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0));
            let (vx, vy) = (rng.gen_range(0.0..60.0), rng.gen_range(0.0..60.0));
            let (qx, qy) = (rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0));
            let u = mk(&mut rng, ux, uy, 2.0);
            let v = mk(&mut rng, vx, vy, 2.0);
            let q = mk(&mut rng, qx, qy, 2.0);
            if sphere_validate(&u, &v, &q) {
                fired += 1;
                assert!(
                    f_sd(&u, &v, &q),
                    "sphere validation fired on a non-dominating pair"
                );
            }
        }
        assert!(
            fired > 0,
            "the spot check never exercised the positive path"
        );
    }
}
