//! Instrumentation-purity regression test.
//!
//! Pins the exact candidate sets and legacy cost counters of every
//! operator on a fixed pseudo-random workload to the values produced by
//! the pipeline *before* the `osd-obs` instrumentation existed. The
//! observability hooks must never change what the algorithm computes:
//! with the `obs` feature off they compile to no-ops (bit-identical
//! pipeline), and with it on the timers only read clocks — so these
//! pinned values must hold in **both** builds.
//!
//! If this test fails after an intentional algorithmic change, regenerate
//! the table by printing `(ids, stats, objects_checked)` for the workload
//! below; if it fails after an instrumentation change, the hooks leaked
//! into the computation — fix the hooks.

use osd_core::{Database, FilterConfig, Operator, PreparedQuery, QueryEngine};
use osd_geom::Point;
use osd_uncertain::UncertainObject;

/// The deterministic xorshift scatter used by the engine determinism tests.
fn scatter(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
    };
    (0..n)
        .map(|_| {
            UncertainObject::uniform(
                (0..instances)
                    .map(|_| Point::new(vec![next(), next()]))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn results_and_stats_match_pre_instrumentation_baseline() {
    let db = Database::new(scatter(40, 3, 0x0517));
    let queries: Vec<PreparedQuery> = scatter(5, 2, 99)
        .into_iter()
        .map(PreparedQuery::new)
        .collect();

    // (operator, query index, candidate ids in emission order,
    //  instance_comparisons, dominance_checks, flow_runs, mbr_checks,
    //  objects_checked) — captured from commit 71f4287 (pre-osd-obs).
    #[allow(clippy::type_complexity)]
    let baseline: &[(Operator, usize, &[usize], u64, u64, u64, u64, usize)] = &[
        (
            Operator::SSd,
            0,
            &[5, 0, 14, 25, 31, 20, 24, 21],
            1623,
            200,
            0,
            200,
            40,
        ),
        (
            Operator::SSd,
            1,
            &[8, 5, 32, 34, 29, 1, 30, 2, 11, 7, 36, 20, 27, 23, 38],
            1651,
            190,
            0,
            190,
            40,
        ),
        (
            Operator::SSd,
            2,
            &[13, 34, 32, 7, 5, 1, 10, 17, 29, 11, 38, 15, 19, 36, 28],
            1705,
            200,
            0,
            200,
            40,
        ),
        (
            Operator::SSd,
            3,
            &[
                8, 5, 0, 23, 9, 25, 16, 7, 21, 20, 2, 1, 19, 37, 27, 29, 38, 36, 11, 35,
            ],
            1855,
            283,
            0,
            283,
            40,
        ),
        (
            Operator::SSd,
            4,
            &[28, 34, 24, 1, 2, 10, 17, 36, 26],
            1430,
            103,
            0,
            103,
            40,
        ),
        (
            Operator::SsSd,
            0,
            &[5, 0, 14, 25, 31, 20, 24, 21, 37],
            2183,
            206,
            0,
            206,
            40,
        ),
        (
            Operator::SsSd,
            1,
            &[
                8, 5, 32, 34, 29, 1, 30, 2, 39, 11, 7, 17, 36, 33, 20, 21, 27, 15, 4, 23, 38, 35,
            ],
            3188,
            356,
            0,
            356,
            40,
        ),
        (
            Operator::SsSd,
            2,
            &[
                13, 34, 32, 39, 16, 7, 8, 24, 2, 5, 21, 1, 30, 10, 17, 29, 4, 11, 38, 15, 19, 36,
                35, 28, 23,
            ],
            3047,
            431,
            0,
            431,
            40,
        ),
        (
            Operator::SsSd,
            3,
            &[
                8, 5, 0, 23, 9, 24, 25, 13, 16, 7, 32, 30, 21, 20, 2, 1, 10, 19, 37, 17, 27, 29,
                38, 36, 11, 26, 35,
            ],
            3509,
            500,
            0,
            500,
            40,
        ),
        (
            Operator::SsSd,
            4,
            &[28, 34, 24, 1, 13, 9, 7, 2, 10, 35, 3, 17, 36, 21, 38, 6, 26],
            2633,
            239,
            0,
            239,
            40,
        ),
        (
            Operator::PSd,
            0,
            &[5, 0, 14, 25, 31, 9, 20, 24, 32, 21, 37],
            5130,
            278,
            44,
            387,
            40,
        ),
        (
            Operator::PSd,
            1,
            &[
                8, 5, 32, 34, 29, 1, 30, 2, 39, 11, 7, 31, 17, 36, 33, 20, 21, 25, 27, 26, 15, 4,
                23, 38, 35,
            ],
            4975,
            407,
            22,
            474,
            40,
        ),
        (
            Operator::PSd,
            2,
            &[
                13, 34, 32, 39, 16, 31, 7, 8, 9, 24, 2, 0, 14, 5, 21, 1, 25, 30, 10, 17, 29, 4, 11,
                38, 15, 33, 19, 36, 35, 28, 23, 26,
            ],
            4832,
            604,
            17,
            651,
            40,
        ),
        (
            Operator::PSd,
            3,
            &[
                8, 5, 0, 23, 9, 24, 25, 13, 16, 7, 32, 12, 30, 21, 20, 2, 31, 1, 10, 19, 4, 37, 17,
                27, 29, 39, 38, 33, 36, 11, 26, 35, 22,
            ],
            5323,
            622,
            18,
            681,
            40,
        ),
        (
            Operator::PSd,
            4,
            &[
                28, 34, 24, 1, 13, 9, 7, 2, 29, 10, 35, 3, 17, 20, 11, 19, 36, 0, 21, 38, 6, 26,
                16, 15,
            ],
            5516,
            366,
            33,
            453,
            40,
        ),
        (
            Operator::FSd,
            0,
            &[
                5, 0, 14, 25, 31, 9, 20, 24, 32, 21, 37, 38, 7, 18, 13, 12, 16, 1, 27, 10, 2, 29,
                17, 15, 34,
            ],
            3830,
            436,
            0,
            436,
            40,
        ),
        (
            Operator::FSd,
            1,
            &[
                8, 5, 32, 34, 29, 1, 30, 2, 14, 39, 11, 7, 31, 17, 36, 33, 37, 20, 21, 25, 13, 27,
                26, 15, 4, 24, 0, 23, 38, 9, 16, 35, 12, 6, 10, 28, 19,
            ],
            6080,
            711,
            0,
            711,
            40,
        ),
        (
            Operator::FSd,
            2,
            &[
                13, 34, 32, 39, 16, 31, 7, 8, 9, 24, 2, 0, 12, 14, 5, 21, 1, 25, 30, 10, 17, 29, 4,
                20, 11, 6, 37, 38, 15, 33, 19, 27, 36, 35, 28, 18, 23, 26, 22, 3,
            ],
            6616,
            780,
            0,
            780,
            40,
        ),
        (
            Operator::FSd,
            3,
            &[
                8, 5, 0, 23, 9, 24, 25, 13, 16, 7, 32, 12, 30, 21, 20, 2, 31, 1, 10, 19, 4, 37, 17,
                27, 29, 39, 38, 34, 33, 3, 18, 6, 14, 36, 11, 26, 35, 22, 15, 28,
            ],
            6566,
            780,
            0,
            780,
            40,
        ),
        (
            Operator::FSd,
            4,
            &[
                28, 34, 24, 1, 13, 9, 7, 2, 29, 10, 35, 33, 22, 3, 18, 17, 20, 11, 19, 36, 25, 0,
                21, 8, 38, 6, 37, 26, 16, 32, 23, 27, 4, 12, 5, 31, 15, 39,
            ],
            6160,
            717,
            0,
            717,
            40,
        ),
        (
            Operator::FPlusSd,
            0,
            &[
                5, 0, 14, 25, 31, 9, 20, 24, 32, 21, 37, 38, 7, 18, 13, 12, 16, 1, 27, 10, 2, 29,
                17, 15, 34, 6, 11, 19, 22, 3, 35, 36, 26, 33,
            ],
            80,
            615,
            0,
            1230,
            40,
        ),
        (
            Operator::FPlusSd,
            1,
            &[
                8, 5, 32, 34, 29, 1, 30, 2, 14, 39, 11, 7, 31, 17, 36, 33, 37, 20, 21, 25, 13, 27,
                26, 15, 4, 24, 0, 23, 38, 9, 16, 35, 12, 6, 22, 10, 28, 18, 19, 3,
            ],
            80,
            780,
            0,
            1560,
            40,
        ),
        (
            Operator::FPlusSd,
            2,
            &[
                13, 34, 32, 39, 16, 31, 7, 8, 9, 24, 2, 0, 12, 14, 5, 21, 1, 25, 30, 10, 17, 29, 4,
                20, 11, 6, 37, 38, 15, 33, 19, 27, 36, 35, 28, 18, 23, 26, 22, 3,
            ],
            80,
            780,
            0,
            1560,
            40,
        ),
        (
            Operator::FPlusSd,
            3,
            &[
                8, 5, 0, 23, 9, 24, 25, 13, 16, 7, 32, 12, 30, 21, 20, 2, 31, 1, 10, 19, 4, 37, 17,
                27, 29, 39, 38, 34, 33, 3, 18, 6, 14, 36, 11, 26, 35, 22, 15, 28,
            ],
            80,
            780,
            0,
            1560,
            40,
        ),
        (
            Operator::FPlusSd,
            4,
            &[
                28, 34, 24, 1, 13, 9, 7, 2, 29, 10, 35, 33, 22, 3, 18, 17, 20, 11, 19, 36, 25, 0,
                21, 8, 38, 6, 37, 26, 16, 32, 23, 27, 4, 12, 5, 31, 15, 39, 14, 30,
            ],
            80,
            780,
            0,
            1560,
            40,
        ),
    ];

    for &(op, qi, ids, ic, dc, fl, mbr, checked) in baseline {
        let r = QueryEngine::with_config(&db, op, FilterConfig::all()).run(&queries[qi]);
        assert_eq!(r.ids(), ids, "{op:?} q{qi}: candidate ids drifted");
        assert_eq!(
            (
                r.stats.instance_comparisons,
                r.stats.dominance_checks,
                r.stats.flow_runs,
                r.stats.mbr_checks,
                r.objects_checked,
            ),
            (ic, dc, fl, mbr, checked),
            "{op:?} q{qi}: legacy counters drifted"
        );
    }
}
