//! Verbatim reproductions of the paper's worked examples (Figures 2–9, 15
//! and Examples 2, 3, 5), each realised as concrete 2-D geometry whose
//! pairwise distances match the figures.

use osd_core::{
    f_plus_sd, f_sd, nn_candidates, p_sd, peer_network_flow, s_sd, ss_sd, Database, FilterConfig,
    Operator, PreparedQuery,
};
use osd_geom::Point;
use osd_uncertain::{UncertainObject, SCALE};

/// Places a point at distances `(d1, d2)` from `q1 = (0,0)` and
/// `q2 = (D, 0)`. Panics if the distances violate the triangle inequality.
fn place(d1: f64, d2: f64, big_d: f64) -> Point {
    assert!(
        (d1 - d2).abs() <= big_d + 1e-9 && big_d <= d1 + d2 + 1e-9,
        "distances ({d1}, {d2}) not realisable at separation {big_d}"
    );
    let x = (big_d * big_d + d1 * d1 - d2 * d2) / (2.0 * big_d);
    let y = (d1 * d1 - x * x).max(0.0).sqrt();
    Point::new(vec![x, y])
}

fn two_queries(big_d: f64) -> UncertainObject {
    UncertainObject::uniform(vec![
        Point::new(vec![0.0, 0.0]),
        Point::new(vec![big_d, 0.0]),
    ])
}

#[test]
fn placement_helper_is_exact() {
    let p = place(5.0, 15.0, 15.0);
    assert!((p.dist(&Point::new(vec![0.0, 0.0])) - 5.0).abs() < 1e-9);
    assert!((p.dist(&Point::new(vec![15.0, 0.0])) - 15.0).abs() < 1e-9);
}

/// Figure 2: F-SD with well-separated vs overlapping objects.
#[test]
fn figure2_full_spatial_dominance() {
    let q = UncertainObject::uniform(vec![
        Point::new(vec![0.0, 0.0]),
        Point::new(vec![1.0, 0.0]),
        Point::new(vec![0.5, 1.0]),
    ]);
    // A hugs the query; B is far: every a is closer than every b to every q.
    let a = UncertainObject::uniform(vec![Point::new(vec![0.4, 0.4]), Point::new(vec![0.6, 0.5])]);
    let b = UncertainObject::uniform(vec![
        Point::new(vec![20.0, 0.0]),
        Point::new(vec![21.0, 1.0]),
    ]);
    // C overlaps the query region: some c beats some a for some q.
    let c = UncertainObject::uniform(vec![
        Point::new(vec![0.45, 0.45]),
        Point::new(vec![30.0, 30.0]),
    ]);
    assert!(f_sd(&a, &b, &q), "F-SD(A,B,Q) should hold");
    assert!(
        !f_sd(&a, &c, &q),
        "¬F-SD(A,C,Q): C has an instance next to Q"
    );
    assert!(!f_sd(&b, &a, &q));
}

/// Figure 3: S-SD vs SS-SD and the N2 counterexample. Distance matrix
/// (rows: instance, cols: δ to q1, q2), |q1 q2| = 8:
///   A: a1 (1, 8),  a2 (4, 7)      — best at q1
///   B: b1 (2, 8.5), b2 (5, 7.5)   — dominated by A everywhere
///   C: c1 (10, 6),  c2 (11, 7)    — always best at q2
#[test]
fn figure3_ssd_vs_sssd() {
    let big_d = 8.0;
    let q = two_queries(big_d);
    let a = UncertainObject::uniform(vec![place(1.0, 8.0, big_d), place(4.0, 7.0, big_d)]);
    let b = UncertainObject::uniform(vec![place(2.0, 8.5, big_d), place(5.0, 7.5, big_d)]);
    let c = UncertainObject::uniform(vec![place(10.0, 6.0, big_d), place(11.0, 7.0, big_d)]);

    // The paper's Figure 3 claims:
    assert!(s_sd(&a, &b, &q), "S-SD(A,B,Q)");
    assert!(s_sd(&a, &c, &q), "S-SD(A,C,Q)");
    assert!(ss_sd(&a, &b, &q), "SS-SD(A,B,Q)");
    assert!(!ss_sd(&a, &c, &q), "¬SS-SD(A,C,Q): C beats A at q2");
    assert!(!ss_sd(&b, &c, &q));

    // NNC under S-SD is {A}; under SS-SD it grows to {A, C} (Figure 5's
    // inclusion chain in action).
    let db = Database::new(vec![a, b, c]);
    let pq = PreparedQuery::new(q);
    let ssd = nn_candidates(&db, &pq, Operator::SSd, &FilterConfig::all());
    let mut ids = ssd.ids();
    ids.sort_unstable();
    assert_eq!(ids, vec![0]);
    let sssd = nn_candidates(&db, &pq, Operator::SsSd, &FilterConfig::all());
    let mut ids = sssd.ids();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 2]);
}

/// Figure 3's possible-world point, kept in core terms: C is stochastically
/// dominated by A (S-SD(A,C)) yet wins **every** possible world in which q2
/// occurs, so no operator covering N2 may let A dominate C — and SS-SD
/// indeed does not.
#[test]
fn figure3_world_semantics_motivation() {
    let big_d = 8.0;
    let q = two_queries(big_d);
    let a = UncertainObject::uniform(vec![place(1.0, 8.0, big_d), place(4.0, 7.0, big_d)]);
    let c = UncertainObject::uniform(vec![place(10.0, 6.0, big_d), place(11.0, 7.0, big_d)]);
    // C's every distance to q2 (6, 7) undercuts A's every distance to q2
    // (8, 7): specifically max(C_q2) = 7 ≤ min(A_q2) = 7 with a strict win
    // for c1.
    assert!(s_sd(&a, &c, &q));
    assert!(!ss_sd(&a, &c, &q));
}

/// Figure 4: SS-SD does not cover N3 (EMD can invert the preference), and
/// P-SD fixes it. Distance matrix with |q1 q2| = 6.75:
///   A: a1 (1, 6),    a2 (2, 7)
///   B: b1 (1, 7.5),  b2 (2.5, 6.5)   — SS-SD(A,B) holds, EMD prefers B
///   C: c1 (2.2, 7.2), c2 (1.5, 6.2)  — P-SD(A,C) via the crossing match
#[test]
fn figure4_psd_vs_sssd() {
    let big_d = 6.75;
    let q = two_queries(big_d);
    let a = UncertainObject::uniform(vec![place(1.0, 6.0, big_d), place(2.0, 7.0, big_d)]);
    let b = UncertainObject::uniform(vec![place(1.0, 7.5, big_d), place(2.5, 6.5, big_d)]);
    let c = UncertainObject::uniform(vec![place(2.2, 7.2, big_d), place(1.5, 6.2, big_d)]);

    assert!(s_sd(&a, &b, &q), "S-SD(A,B,Q)");
    assert!(ss_sd(&a, &b, &q), "SS-SD(A,B,Q)");
    assert!(!p_sd(&a, &b, &q), "¬P-SD(A,B,Q): a2 has no peer in B");
    assert!(p_sd(&a, &c, &q), "P-SD(A,C,Q) via a1→c2, a2→c1");
    assert!(!f_sd(&a, &c, &q), "¬F-SD(A,C,Q): the match must cross");

    // NNC: {A} under SS-SD, {A, B} under P-SD (Figure 4's narrative).
    let db = Database::new(vec![a, b, c]);
    let pq = PreparedQuery::new(q);
    let mut sssd = nn_candidates(&db, &pq, Operator::SsSd, &FilterConfig::all()).ids();
    sssd.sort_unstable();
    assert_eq!(sssd, vec![0]);
    let mut psd = nn_candidates(&db, &pq, Operator::PSd, &FilterConfig::all()).ids();
    psd.sort_unstable();
    assert_eq!(psd, vec![0, 1]);
}

/// Example 2 / Figure 6(a): single-instance A and B, S-SD without SS-SD.
#[test]
fn example2_figure6a() {
    // 1-D line: q1 = 0, q2 = 20; A at 17, B at −5.
    let q = UncertainObject::uniform(vec![Point::new(vec![0.0]), Point::new(vec![20.0])]);
    let a = UncertainObject::uniform(vec![Point::new(vec![17.0])]);
    let b = UncertainObject::uniform(vec![Point::new(vec![-5.0])]);
    // A_Q = {(3,.5),(17,.5)}, B_Q = {(5,.5),(25,.5)}.
    assert!(s_sd(&a, &b, &q), "S-SD(A,B,Q)");
    assert!(
        !ss_sd(&a, &b, &q),
        "¬SS-SD(A,B,Q): B beats A at q1 (5 < 17)"
    );
}

/// Example 2 / Figure 6(b): A_q1 = {5,8}, A_q2 = {10,23},
/// B_q1 = B_q2 = {10,25} ⇒ SS-SD(A,B,Q).
#[test]
fn example2_figure6b() {
    let big_d = 15.0;
    let q = two_queries(big_d);
    let a = UncertainObject::uniform(vec![place(5.0, 10.0, big_d), place(8.0, 23.0, big_d)]);
    let b = UncertainObject::uniform(vec![place(10.0, 10.0, big_d), place(25.0, 25.0, big_d)]);
    assert!(ss_sd(&a, &b, &q), "SS-SD(A,B,Q)");
    assert!(s_sd(&a, &b, &q), "S-SD(A,B,Q) by cover (Theorem 2)");
}

/// Example 3 / Figure 8: the explicit match witnessing P-SD(A,B,Q).
/// δ(a1,q1)=5<10, δ(a1,q2)=15<20, δ(a2,q1)=20<25, δ(a2,q2)=10<15.
#[test]
fn example3_figure8() {
    let big_d = 15.0;
    let q = two_queries(big_d);
    let a = UncertainObject::uniform(vec![place(5.0, 15.0, big_d), place(20.0, 10.0, big_d)]);
    let b = UncertainObject::uniform(vec![place(10.0, 20.0, big_d), place(25.0, 15.0, big_d)]);
    assert!(p_sd(&a, &b, &q), "P-SD(A,B,Q) via the identity match");
    assert!(ss_sd(&a, &b, &q), "SS-SD follows by cover");
    assert!(!f_sd(&a, &b, &q), "¬F-SD: δ(a2,q1)=20 > δ(b1,q1)=10");
}

/// Example 5 / Figure 9: the max-flow reduction (Theorem 12). U has three
/// instances with masses (.5, .2, .3); V has two with (.5, .5); the edge
/// set is exactly {u1v1, u1v2, u2v1, u2v2, u3v2} and flow value 1 exists.
#[test]
fn example5_figure9_maxflow() {
    // Single query instance at the origin: u ⪯_Q v ⟺ |u| ≤ |v|.
    let q = UncertainObject::uniform(vec![Point::new(vec![0.0, 0.0])]);
    let u = UncertainObject::new(vec![
        (Point::new(vec![1.0, 0.0]), 0.5), // r = 1
        (Point::new(vec![0.0, 2.0]), 0.2), // r = 2
        (Point::new(vec![4.0, 0.0]), 0.3), // r = 4
    ]);
    let v = UncertainObject::new(vec![
        (Point::new(vec![3.0, 0.0]), 0.5), // r = 3: u1, u2 reach it
        (Point::new(vec![0.0, 5.0]), 0.5), // r = 5: all reach it
    ]);
    let (flow, total) = peer_network_flow(&u, &v, &q);
    assert_eq!(flow, total, "Figure 9's network saturates");
    assert_eq!(total, SCALE);
    assert!(p_sd(&u, &v, &q));
    // Reversed, u1 (r=1) cannot be matched by any v.
    let (flow_rev, _) = peer_network_flow(&v, &u, &q);
    assert!(flow_rev < SCALE);
    assert!(!p_sd(&v, &u, &q));
}

/// Figure 15 / Theorem 3: with |Q| = 1 the three strict operators agree and
/// F-SD remains strictly stronger.
#[test]
fn figure15_single_query_instance() {
    let q = UncertainObject::uniform(vec![Point::new(vec![0.0, 0.0])]);
    let a = UncertainObject::uniform(vec![
        Point::new(vec![1.0, 0.0]),
        Point::new(vec![10.0, 0.0]),
    ]);
    let b = UncertainObject::uniform(vec![
        Point::new(vec![2.0, 0.0]),
        Point::new(vec![11.0, 0.0]),
    ]);
    assert!(s_sd(&a, &b, &q));
    assert!(ss_sd(&a, &b, &q));
    assert!(p_sd(&a, &b, &q));
    assert!(!f_sd(&a, &b, &q), "F-SD still fails: max(A)=10 > min(B)=2");
    assert!(!f_plus_sd(&a, &b, &q));
}

/// Theorem 4 / cover validation: MBR-level F-SD implies every operator.
#[test]
fn theorem4_mbr_validation_implies_all() {
    let q = UncertainObject::uniform(vec![Point::new(vec![0.0, 0.0]), Point::new(vec![1.0, 1.0])]);
    let a = UncertainObject::uniform(vec![Point::new(vec![0.2, 0.2]), Point::new(vec![0.8, 0.8])]);
    let b = UncertainObject::uniform(vec![
        Point::new(vec![50.0, 50.0]),
        Point::new(vec![51.0, 51.0]),
    ]);
    assert!(f_plus_sd(&a, &b, &q));
    assert!(f_sd(&a, &b, &q));
    assert!(p_sd(&a, &b, &q));
    assert!(ss_sd(&a, &b, &q));
    assert!(s_sd(&a, &b, &q));
}

/// Identical objects never dominate each other: the strict operators have
/// the `U_Q ≠ V_Q` side condition (Definitions 2/3/5), and our F-SD/F⁺-SD
/// apply the same equal-twin guard (the literal paper definition would
/// mutually eliminate both twins, leaving no representative of the tied
/// optimum in the candidate set).
#[test]
fn identical_objects_stay_candidates() {
    let q = UncertainObject::uniform(vec![Point::new(vec![0.0, 0.0])]);
    let a = UncertainObject::uniform(vec![Point::new(vec![1.0, 1.0])]);
    let twin = a.clone();
    assert!(!s_sd(&a, &twin, &q));
    assert!(!ss_sd(&a, &twin, &q));
    assert!(!p_sd(&a, &twin, &q));
    assert!(!f_sd(&a, &twin, &q));
    assert!(!f_plus_sd(&a, &twin, &q));
    let db = Database::new(vec![a, twin]);
    let pq = PreparedQuery::new(q);
    for op in Operator::ALL {
        let mut ids = nn_candidates(&db, &pq, op, &FilterConfig::all()).ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1], "{op:?} must keep both twins");
    }
}
