//! Behavioural tests of the §5.1 filtering fast paths, observed through the
//! cost counters: the point is not just that the filters are *correct*
//! (operator_props covers that) but that they actually *fire* — validation
//! decides far-apart pairs without touching instances, statistic pruning
//! kills inverted pairs cheaply, and the level-by-level bounds resolve
//! node-separable pairs before the exact scans.

use osd_core::{CheckCtx, Database, FilterConfig, Operator, PreparedQuery};
use osd_geom::Point;
use osd_uncertain::UncertainObject;

fn obj(pts: &[(f64, f64)]) -> UncertainObject {
    UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
}

/// A pair separated far beyond the query extent: strict MBR validation must
/// decide every operator without any instance comparisons.
#[test]
fn mbr_validation_decides_far_pairs_for_free() {
    let db = Database::new(vec![
        obj(&[(0.0, 0.0), (1.0, 1.0), (0.5, 0.8)]),
        obj(&[(500.0, 500.0), (501.0, 499.0), (500.5, 500.5)]),
    ]);
    let q = PreparedQuery::new(obj(&[(0.0, 1.0), (1.0, 0.0)]));
    for op in [Operator::SSd, Operator::SsSd, Operator::PSd] {
        let mut ctx = CheckCtx::new(&db, &q, FilterConfig::all());
        assert!(ctx.dominates(op, 0, 1));
        assert_eq!(
            ctx.stats.instance_comparisons, 0,
            "{op:?} should be decided by MBR validation alone"
        );
        assert!(ctx.stats.mbr_checks >= 1);
    }
}

/// An inverted pair (candidate farther than the probe) with overlapping
/// boxes: statistic pruning must reject it without running the full scan.
/// The statistic path still builds the cached distributions once, so the
/// comparison count is bounded by the build cost plus a constant rather
/// than by a full merged scan per query instance.
#[test]
fn statistic_pruning_rejects_inverted_pairs_cheaply() {
    // u is farther overall (its min distance already exceeds v's max).
    let u = obj(&[(10.0, 0.0), (12.0, 0.0)]);
    let v = obj(&[(1.0, 0.0), (2.0, 0.0)]);
    let db = Database::new(vec![u, v]);
    let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
    let cfg = FilterConfig {
        level_by_level: false,
        ..FilterConfig::all()
    };
    let mut ctx = CheckCtx::new(&db, &q, cfg);
    assert!(!ctx.dominates(Operator::SSd, 0, 1));
    // Build cost: 2 instances × 1 query instance per object = 4, plus the
    // 3 statistic comparisons. A full scan would add ≥ 2 more per pair.
    assert!(
        ctx.stats.instance_comparisons <= 4 + 3,
        "expected the statistic path only, got {} comparisons",
        ctx.stats.instance_comparisons
    );
}

/// With everything disabled (BF), the same decision costs strictly more
/// instance comparisons than the full filter stack on a non-trivial pair.
#[test]
fn full_stack_is_cheaper_than_bruteforce() {
    let u = obj(&[(1.0, 0.0), (2.0, 1.0), (1.5, 0.5), (0.5, 1.5)]);
    let v = obj(&[(6.0, 0.0), (7.0, 1.0), (6.5, 0.5), (5.5, 1.5)]);
    let db = Database::new(vec![u, v]);
    let q = PreparedQuery::new(obj(&[(0.0, 0.0), (0.5, 0.5), (1.0, 0.0)]));
    let run = |cfg: FilterConfig| {
        let mut ctx = CheckCtx::new(&db, &q, cfg);
        let d = ctx.dominates(Operator::PSd, 0, 1);
        (d, ctx.stats.instance_comparisons)
    };
    let (d_bf, c_bf) = run(FilterConfig::bf());
    let (d_all, c_all) = run(FilterConfig::all());
    assert_eq!(d_bf, d_all, "filters must not change the verdict");
    assert!(
        c_all < c_bf,
        "full stack ({c_all}) should beat brute force ({c_bf})"
    );
}

/// Level-by-level bounds resolve pairs whose local R-tree nodes separate,
/// without building the exact distributions.
#[test]
fn level_bounds_decide_node_separable_pairs() {
    // Two tight clusters per object, many instances, well separated: the
    // level-1 node MBRs already order the distributions.
    let mk = |cx: f64| {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push((cx + (i % 3) as f64 * 0.1, (i / 3) as f64 * 0.1));
        }
        obj(&pts)
    };
    let db = Database::new(vec![mk(5.0), mk(50.0)]);
    let q = PreparedQuery::new(obj(&[(0.0, 0.0), (1.0, 0.0)]));
    // Disable MBR validation so the level path is the first resolver.
    let cfg = FilterConfig {
        mbr_validation: false,
        ..FilterConfig::all()
    };
    let mut ctx = CheckCtx::new(&db, &q, cfg);
    assert!(ctx.dominates(Operator::SSd, 0, 1));
    // The full distributions have 8 × 2 = 16 atoms each; deciding at the
    // node level must use far fewer comparisons than two 16-atom builds
    // plus a 16-vs-16 merged scan (~48); statistic pruning builds them
    // anyway, so check the level path fires before any exact scan by
    // disabling pruning as well.
    let cfg = FilterConfig {
        mbr_validation: false,
        pruning: false,
        ..FilterConfig::all()
    };
    let mut ctx = CheckCtx::new(&db, &q, cfg);
    assert!(ctx.dominates(Operator::SSd, 0, 1));
    assert!(
        ctx.stats.instance_comparisons < 32,
        "level bounds should decide before exact builds, got {}",
        ctx.stats.instance_comparisons
    );
}

/// The P-SD in-hull geometric reject fires: an instance of V strictly
/// inside CH(Q) with no coincident U instance makes P-SD false without a
/// flow computation.
#[test]
fn in_hull_reject_skips_the_flow() {
    let u = obj(&[(10.0, 10.0), (11.0, 11.0)]);
    // v1 sits inside the query hull.
    let v = obj(&[(1.0, 1.0), (12.0, 12.0)]);
    let q = PreparedQuery::new(obj(&[(0.0, 0.0), (3.0, 0.0), (0.0, 3.0), (3.0, 3.0)]));
    let db = Database::new(vec![u, v]);
    let cfg = FilterConfig {
        geometric: true,
        ..FilterConfig::bf()
    };
    let mut ctx = CheckCtx::new(&db, &q, cfg);
    assert!(!ctx.dominates(Operator::PSd, 0, 1));
    assert_eq!(
        ctx.stats.flow_runs, 0,
        "the in-hull reject should avoid max-flow"
    );
}

/// Caching across pairwise checks: the second check against the same
/// candidate reuses the cached distributions.
#[test]
fn cache_amortises_repeated_checks() {
    let db = Database::new(vec![
        obj(&[(1.0, 0.0), (2.0, 0.0)]),
        obj(&[(3.0, 0.0), (4.0, 0.0)]),
        obj(&[(5.0, 0.0), (6.0, 0.0)]),
    ]);
    let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
    let cfg = FilterConfig {
        mbr_validation: false,
        level_by_level: false,
        ..FilterConfig::all()
    };
    let mut ctx = CheckCtx::new(&db, &q, cfg);
    let _ = ctx.dominates(Operator::SSd, 0, 1);
    let s1 = ctx.stats;
    let _ = ctx.dominates(Operator::SSd, 0, 2);
    // The second check shares object 0's distribution: it must be cheaper
    // than the first (which built two distributions). `Stats` is
    // cumulative inside one ctx, so compare the increments.
    let second = ctx.stats.instance_comparisons - s1.instance_comparisons;
    assert!(
        second < s1.instance_comparisons,
        "expected cache reuse: first {} vs second {}",
        s1.instance_comparisons,
        second
    );
}
