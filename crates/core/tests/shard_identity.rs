//! Bit-identity between the flat and sharded index paths.
//!
//! The sharding refactor's frozen contract: for every dominance operator,
//! every shard count, and both execution strategies (merged-forest
//! traversal and scatter-gather), the candidate set — ids, `δ_min` **bits**,
//! emission order, and k-NNC dominator counts — must equal the flat
//! `Database` baseline. Only traversal *cost counters* may differ between
//! the merged and scatter paths (that difference is the shared-bound
//! benefit `repro scale` measures), so they are deliberately not compared
//! here.
//!
//! Run with `--features strict-invariants` too: the CI matrix exercises
//! both, so the R-tree structural validator audits every sharded build.

use osd_core::{
    k_nn_candidates, k_nn_candidates_scatter, nn_candidates, nn_candidates_scatter, Database,
    FilterConfig, Operator, PreparedQuery, ShardedDatabase, SpatialIndex,
};
use osd_geom::Point;
use osd_uncertain::UncertainObject;
use proptest::prelude::*;

fn object_strategy(max_m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..max_m).prop_map(|pts| {
        UncertainObject::uniform(
            pts.into_iter()
                .map(|(x, y)| Point::new(vec![x, y]))
                .collect(),
        )
    })
}

fn db_strategy() -> impl Strategy<Value = (Vec<UncertainObject>, UncertainObject, usize)> {
    (
        prop::collection::vec(object_strategy(4), 2..14),
        object_strategy(4),
        1usize..6,
    )
}

/// (id, δ_min bits) per candidate, in emission order — the NNC contract.
fn nnc_fingerprint(r: &osd_core::NncResult) -> Vec<(usize, u64)> {
    r.candidates
        .iter()
        .map(|c| (c.id, c.min_dist.to_bits()))
        .collect()
}

/// (id, δ_min bits, dominator count) in emission order — the k-NNC contract.
fn knnc_fingerprint(r: &osd_core::KnncResult) -> Vec<(usize, u64, usize)> {
    r.candidates
        .iter()
        .map(|(c, d)| (c.id, c.min_dist.to_bits(), *d))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NNC over a sharded index — merged traversal and scatter-gather —
    /// is bit-identical to the flat baseline for every operator.
    #[test]
    fn prop_nnc_sharded_matches_flat((objects, query, shards) in db_strategy()) {
        let flat = Database::new(objects.clone());
        let sharded = ShardedDatabase::new(objects, shards);
        prop_assert_eq!(flat.len(), sharded.len());
        let pq = PreparedQuery::new(query);
        let cfg = FilterConfig::all();
        for op in Operator::ALL {
            let base = nnc_fingerprint(&nn_candidates(&flat, &pq, op, &cfg));
            let merged = nnc_fingerprint(&nn_candidates(&sharded, &pq, op, &cfg));
            prop_assert_eq!(&merged, &base, "merged {:?} @ {} shards", op, shards);
            for threads in [1, 4] {
                let scatter =
                    nnc_fingerprint(&nn_candidates_scatter(&sharded, &pq, op, &cfg, threads));
                prop_assert_eq!(
                    &scatter, &base,
                    "scatter {:?} @ {} shards / {} threads", op, shards, threads
                );
            }
        }
    }

    /// k-NNC over a sharded index matches the flat baseline — ids, bits,
    /// order and dominator counts — for both execution strategies.
    #[test]
    fn prop_knnc_sharded_matches_flat(
        (objects, query, shards) in db_strategy(),
        k in 1usize..4,
    ) {
        let flat = Database::new(objects.clone());
        let sharded = ShardedDatabase::new(objects, shards);
        let pq = PreparedQuery::new(query);
        let cfg = FilterConfig::all();
        for op in [Operator::SSd, Operator::PSd] {
            let base = knnc_fingerprint(&k_nn_candidates(&flat, &pq, op, k, &cfg));
            let merged = knnc_fingerprint(&k_nn_candidates(&sharded, &pq, op, k, &cfg));
            prop_assert_eq!(&merged, &base, "merged {:?} k={} @ {} shards", op, k, shards);
            let scatter = knnc_fingerprint(&k_nn_candidates_scatter(
                &sharded, &pq, op, k, &cfg, 3,
            ));
            prop_assert_eq!(&scatter, &base, "scatter {:?} k={} @ {} shards", op, k, shards);
        }
    }

    /// Identity survives post-build inserts: interleaving `try_insert`
    /// calls after sharding keeps both stores logically equal.
    #[test]
    fn prop_identity_survives_inserts(
        (objects, query, shards) in db_strategy(),
        extra in prop::collection::vec(object_strategy(3), 1..4),
    ) {
        let mut flat = Database::new(objects.clone());
        let mut sharded = ShardedDatabase::new(objects, shards);
        for o in extra {
            flat.try_insert_object(o.clone()).unwrap();
            sharded.try_insert_object(o).unwrap();
        }
        let pq = PreparedQuery::new(query);
        let cfg = FilterConfig::all();
        for op in [Operator::SSd, Operator::FPlusSd] {
            let base = nnc_fingerprint(&nn_candidates(&flat, &pq, op, &cfg));
            let merged = nnc_fingerprint(&nn_candidates(&sharded, &pq, op, &cfg));
            prop_assert_eq!(&merged, &base, "{:?} after inserts @ {} shards", op, shards);
        }
    }
}
