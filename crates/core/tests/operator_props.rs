//! Property tests for the spatial dominance operators: the cover chain
//! (Theorem 2), the |Q| = 1 collapse (Theorem 3), transitivity (Theorem 9),
//! filter-configuration invariance (every §5.1 filter stack must decide
//! identically), and Algorithm 1 against the O(n²) oracle.

use osd_core::{
    k_nn_candidates, k_nn_candidates_bruteforce, nn_candidates, nn_candidates_bruteforce, CheckCtx,
    Database, FilterConfig, Operator, PreparedQuery,
};
use osd_geom::Point;
use osd_uncertain::UncertainObject;
use proptest::prelude::*;

fn object_strategy(max_m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..max_m).prop_map(|pts| {
        UncertainObject::uniform(
            pts.into_iter()
                .map(|(x, y)| Point::new(vec![x, y]))
                .collect(),
        )
    })
}

fn weighted_object_strategy(max_m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec(((0.0f64..100.0, 0.0f64..100.0), 0.05f64..1.0), 1..max_m).prop_map(
        |insts| {
            let total: f64 = insts.iter().map(|&(_, w)| w).sum();
            UncertainObject::new(
                insts
                    .into_iter()
                    .map(|((x, y), w)| (Point::new(vec![x, y]), w / total))
                    .collect(),
            )
        },
    )
}

/// Decides dominance for one operator under a given filter config.
fn check(
    op: Operator,
    db: &Database,
    u: usize,
    v: usize,
    q: &PreparedQuery,
    cfg: &FilterConfig,
) -> bool {
    let mut ctx = CheckCtx::new(db, q, *cfg);
    ctx.dominates(op, u, v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every filter configuration must produce the same verdict — the §5.1
    /// pruning/validation rules are exactness-preserving.
    #[test]
    fn prop_filter_config_invariance(
        u in weighted_object_strategy(5),
        v in weighted_object_strategy(5),
        q in object_strategy(5),
    ) {
        let db = Database::new(vec![u, v]);
        let pq = PreparedQuery::new(q);
        for op in Operator::ALL {
            let baseline = check(op, &db, 0, 1, &pq, &FilterConfig::bf());
            for (name, cfg) in FilterConfig::ablation_ladder() {
                let got = check(op, &db, 0, 1, &pq, &cfg);
                prop_assert_eq!(got, baseline, "{:?} under {} disagrees with BF", op, name);
            }
        }
    }

    /// Theorem 2: F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD (each implication, on random
    /// continuous data where exact distribution ties do not occur).
    #[test]
    fn prop_cover_chain(
        u in weighted_object_strategy(5),
        v in weighted_object_strategy(5),
        q in object_strategy(5),
    ) {
        let db = Database::new(vec![u, v]);
        let pq = PreparedQuery::new(q);
        let cfg = FilterConfig::all();
        let f = check(Operator::FSd, &db, 0, 1, &pq, &cfg);
        let p = check(Operator::PSd, &db, 0, 1, &pq, &cfg);
        let ss = check(Operator::SsSd, &db, 0, 1, &pq, &cfg);
        let s = check(Operator::SSd, &db, 0, 1, &pq, &cfg);
        let fp = check(Operator::FPlusSd, &db, 0, 1, &pq, &cfg);
        prop_assert!(!fp || f, "F⁺-SD must imply F-SD");
        prop_assert!(!f || p, "F-SD must imply P-SD");
        prop_assert!(!p || ss, "P-SD must imply SS-SD");
        prop_assert!(!ss || s, "SS-SD must imply S-SD");
    }

    /// Theorem 3: with |Q| = 1, P-SD = SS-SD = S-SD.
    #[test]
    fn prop_single_query_collapse(
        u in weighted_object_strategy(6),
        v in weighted_object_strategy(6),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0,
    ) {
        let db = Database::new(vec![u, v]);
        let pq = PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![qx, qy])]));
        let cfg = FilterConfig::all();
        let p = check(Operator::PSd, &db, 0, 1, &pq, &cfg);
        let ss = check(Operator::SsSd, &db, 0, 1, &pq, &cfg);
        let s = check(Operator::SSd, &db, 0, 1, &pq, &cfg);
        prop_assert_eq!(p, ss);
        prop_assert_eq!(ss, s);
    }

    /// Theorem 9: transitivity of all four operators.
    #[test]
    fn prop_transitivity(
        u in object_strategy(4),
        v in object_strategy(4),
        z in object_strategy(4),
        q in object_strategy(4),
    ) {
        let db = Database::new(vec![u, v, z]);
        let pq = PreparedQuery::new(q);
        let cfg = FilterConfig::all();
        for op in Operator::ALL {
            let uv = check(op, &db, 0, 1, &pq, &cfg);
            let vz = check(op, &db, 1, 2, &pq, &cfg);
            if uv && vz {
                prop_assert!(check(op, &db, 0, 2, &pq, &cfg), "{:?} not transitive", op);
            }
        }
    }

    /// Algorithm 1 equals the O(n²) oracle for every operator.
    #[test]
    fn prop_nnc_matches_bruteforce(
        objs in prop::collection::vec(object_strategy(4), 2..10),
        q in object_strategy(4),
    ) {
        let db = Database::with_fanouts(objs, 3, 2);
        let pq = PreparedQuery::new(q);
        let cfg = FilterConfig::all();
        for op in Operator::ALL {
            let mut algo = nn_candidates(&db, &pq, op, &cfg).ids();
            algo.sort_unstable();
            let (brute, _) = nn_candidates_bruteforce(&db, &pq, op, &cfg);
            prop_assert_eq!(algo, brute, "Algorithm 1 disagrees with brute force for {:?}", op);
        }
    }

    /// Candidate-set inclusion chain (Figure 5):
    /// NNC(S-SD) ⊆ NNC(SS-SD) ⊆ NNC(P-SD) ⊆ NNC(F-SD) ⊆ NNC(F⁺-SD).
    #[test]
    fn prop_candidate_inclusion_chain(
        objs in prop::collection::vec(object_strategy(4), 2..10),
        q in object_strategy(4),
    ) {
        let db = Database::new(objs);
        let pq = PreparedQuery::new(q);
        let cfg = FilterConfig::all();
        let sets: Vec<std::collections::BTreeSet<usize>> = [
            Operator::SSd, Operator::SsSd, Operator::PSd, Operator::FSd, Operator::FPlusSd,
        ].iter().map(|&op| nn_candidates(&db, &pq, op, &cfg).ids().into_iter().collect()).collect();
        for w in sets.windows(2) {
            prop_assert!(w[0].is_subset(&w[1]), "inclusion chain violated: {:?} ⊄ {:?}", w[0], w[1]);
        }
    }

    /// Dominance is antisymmetric for the strict operators: `u` and `v`
    /// cannot dominate each other simultaneously.
    #[test]
    fn prop_antisymmetry(
        u in weighted_object_strategy(5),
        v in weighted_object_strategy(5),
        q in object_strategy(5),
    ) {
        let db = Database::new(vec![u, v]);
        let pq = PreparedQuery::new(q);
        let cfg = FilterConfig::all();
        for op in [Operator::SSd, Operator::SsSd, Operator::PSd] {
            let uv = check(op, &db, 0, 1, &pq, &cfg);
            let vu = check(op, &db, 1, 0, &pq, &cfg);
            prop_assert!(!(uv && vu), "{:?} is not antisymmetric", op);
        }
    }

    /// k-NNC equals its brute-force oracle and grows monotonically in k.
    #[test]
    fn prop_knnc_oracle_and_monotonicity(
        objs in prop::collection::vec(object_strategy(3), 2..10),
        q in object_strategy(3),
        op_idx in 0usize..5,
    ) {
        let db = Database::with_fanouts(objs, 3, 2);
        let pq = PreparedQuery::new(q);
        let cfg = FilterConfig::all();
        let op = Operator::ALL[op_idx];
        let mut prev: Vec<usize> = Vec::new();
        for k in 1..=3usize {
            let mut algo = k_nn_candidates(&db, &pq, op, k, &cfg).ids();
            algo.sort_unstable();
            let brute = k_nn_candidates_bruteforce(&db, &pq, op, k, &cfg);
            prop_assert_eq!(&algo, &brute, "k-NNC oracle mismatch for {:?}, k={}", op, k);
            prop_assert!(prev.iter().all(|i| algo.contains(i)), "NNC_k not monotone in k");
            prev = algo;
        }
    }

    /// The progressive traversal emits candidates in non-decreasing
    /// `δ_min(V, Q)` order and matches the batch result.
    #[test]
    fn prop_progressive_order(
        objs in prop::collection::vec(object_strategy(4), 2..12),
        q in object_strategy(4),
    ) {
        let db = Database::new(objs);
        let pq = PreparedQuery::new(q);
        let res = nn_candidates(&db, &pq, Operator::SsSd, &FilterConfig::all());
        for w in res.candidates.windows(2) {
            prop_assert!(w[0].min_dist <= w[1].min_dist + 1e-9);
        }
    }
}
