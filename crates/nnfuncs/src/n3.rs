//! Family N3 — selected-pairs based NN functions (§3.4, Appendix A).
//!
//! These functions score an object from a *subset* of its pairwise
//! distances: the Hausdorff distance, the Sum-of-Minimal distance, and the
//! Earth Mover's distance (equal to the Netflow distance when total
//! probability masses are 1). EMD is solved exactly with the min-cost
//! max-flow substrate on fixed-point capacities.

use osd_flow::MinCostFlow;
use osd_geom::Point;
use osd_uncertain::{quantize, UncertainObject, SCALE};

/// Materialises an object's instance points (the owned `points()` accessor
/// was removed with the columnar store; these N3 scorers still want a
/// contiguous point list for `dist_min`).
fn instance_points(object: &UncertainObject) -> Vec<Point> {
    object.instances().iter().map(|i| i.point.clone()).collect()
}

/// Hausdorff distance (Definition 11):
/// `max( max_u δ_min(u, Q), max_q δ_min(q, U) )`.
pub fn hausdorff(object: &UncertainObject, query: &UncertainObject) -> f64 {
    let q_pts = instance_points(query);
    let u_pts = instance_points(object);
    let forward = object
        .instances()
        .iter()
        .map(|u| u.point.dist_min(&q_pts))
        .fold(0.0f64, f64::max);
    let backward = query
        .instances()
        .iter()
        .map(|q| q.point.dist_min(&u_pts))
        .fold(0.0f64, f64::max);
    forward.max(backward)
}

/// Sum-of-Minimal distance (Ramon & Bruynooghe \[27\]), probability-weighted:
/// `½ ( Σ_u p(u) δ_min(u, Q) + Σ_q p(q) δ_min(q, U) )`.
pub fn sum_min(object: &UncertainObject, query: &UncertainObject) -> f64 {
    let q_pts = instance_points(query);
    let u_pts = instance_points(object);
    let forward: f64 = object
        .instances()
        .iter()
        .map(|u| u.prob * u.point.dist_min(&q_pts))
        .sum();
    let backward: f64 = query
        .instances()
        .iter()
        .map(|q| q.prob * q.point.dist_min(&u_pts))
        .sum();
    0.5 * (forward + backward)
}

/// Earth Mover's distance between `object` and `query` — the minimal cost of
/// a *match* (Definition 4) where moving mass `p` over distance `δ` costs
/// `p·δ`. Equal to the Netflow distance (Definition 12) because both sides
/// carry total mass 1.
///
/// Solved exactly as a transportation problem on quantised masses; the
/// returned cost is de-quantised back to probability units.
pub fn emd(object: &UncertainObject, query: &UncertainObject) -> f64 {
    let m = object.len();
    let k = query.len();
    let u_caps = quantize(
        &object
            .instances()
            .iter()
            .map(|i| i.prob)
            .collect::<Vec<_>>(),
    );
    let q_caps = quantize(&query.instances().iter().map(|i| i.prob).collect::<Vec<_>>());

    // Vertices: 0..k = query instances, k..k+m = object instances, then s, t.
    let s = k + m;
    let t = k + m + 1;
    let mut g = MinCostFlow::new(k + m + 2);
    for (j, &cap) in q_caps.iter().enumerate() {
        g.add_edge(s, j, cap, 0.0);
    }
    for (i, &cap) in u_caps.iter().enumerate() {
        g.add_edge(k + i, t, cap, 0.0);
    }
    for (j, q) in query.instances().iter().enumerate() {
        for (i, u) in object.instances().iter().enumerate() {
            g.add_edge(j, k + i, u64::MAX / 4, q.point.dist(&u.point));
        }
    }
    let (flow, cost) = g.min_cost_flow(s, t, SCALE);
    debug_assert_eq!(flow, SCALE, "transportation problem must saturate");
    cost / SCALE as f64
}

/// Netflow distance (Definition 12). With unit total masses it coincides
/// with [`emd`]; kept as a named alias to mirror the paper's terminology.
#[inline]
pub fn netflow(object: &UncertainObject, query: &UncertainObject) -> f64 {
    emd(object, query)
}

/// Brute-force EMD oracle for *uniform* objects with equally many
/// instances: minimises over all one-to-one assignments (permutations).
/// Exponential — tests only.
///
/// # Panics
/// Panics if the objects differ in size, are not uniform, or exceed 9
/// instances.
pub fn emd_bruteforce_uniform(object: &UncertainObject, query: &UncertainObject) -> f64 {
    let n = object.len();
    assert_eq!(
        n,
        query.len(),
        "brute-force EMD needs equal instance counts"
    );
    assert!(n <= 9, "brute-force EMD is factorial; keep n ≤ 9");
    let p = 1.0 / n as f64;
    for inst in object.instances().iter().chain(query.instances()) {
        assert!(
            (inst.prob - p).abs() < 1e-9,
            "brute-force EMD needs uniform masses"
        );
    }
    // For uniform equal masses the optimal transport is a permutation
    // (Birkhoff–von Neumann: the polytope's vertices are permutations).
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |perm| {
        let cost: f64 = perm
            .iter()
            .enumerate()
            .map(|(i, &j)| {
                object.instances()[i]
                    .point
                    .dist(&query.instances()[j].point)
                    * p
            })
            .sum();
        if cost < best {
            best = cost;
        }
    });
    best
}

fn permute(arr: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == arr.len() {
        visit(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, visit);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn obj1(points: &[f64]) -> UncertainObject {
        UncertainObject::uniform(points.iter().map(|&x| Point::new(vec![x])).collect())
    }

    #[test]
    fn hausdorff_basic() {
        let u = obj1(&[0.0, 1.0]);
        let q = obj1(&[0.0, 5.0]);
        // forward: max(min(0,5), min(1,4)) = max(0,1)=1; backward: max(0, 4)=4.
        assert_eq!(hausdorff(&u, &q), 4.0);
        // Symmetric by definition.
        assert_eq!(hausdorff(&q, &u), 4.0);
    }

    #[test]
    fn hausdorff_identical_is_zero() {
        let u = obj1(&[1.0, 2.0, 3.0]);
        assert_eq!(hausdorff(&u, &u), 0.0);
    }

    #[test]
    fn sum_min_basic() {
        let u = obj1(&[0.0, 2.0]);
        let q = obj1(&[0.0]);
        // forward: 0.5*0 + 0.5*2 = 1; backward: 1*0 = 0 → 0.5.
        assert_eq!(sum_min(&u, &q), 0.5);
    }

    /// Figure 4 of the paper: EMD(A, Q) = 4, EMD(B, Q) = 3.75 with
    /// pair distances realised as atoms of a bipartite cost matrix.
    /// Distances: A: (a1,q1)=1, (a1,q2)=?; chosen 1-D embedding:
    /// q1 = 0, q2 = 7; a1 = 1 (δ=1, 6), a2 = 8 (δ=8, 1)? We need the
    /// figure's exact matrix [[1, ?],[?, 7]] minimal sum = 8 → ×0.5 = 4.
    /// Simpler: verify against the brute-force oracle instead.
    #[test]
    fn emd_matches_bruteforce() {
        let cases = vec![
            (obj1(&[0.0, 10.0]), obj1(&[1.0, 2.0])),
            (obj1(&[0.0, 1.0, 2.0]), obj1(&[5.0, 6.0, 7.0])),
            (obj1(&[0.0, 0.0]), obj1(&[3.0, -3.0])),
            (obj1(&[1.0, 4.0, 9.0, 16.0]), obj1(&[2.0, 3.0, 5.0, 8.0])),
        ];
        for (u, q) in cases {
            let fast = emd(&u, &q);
            let brute = emd_bruteforce_uniform(&u, &q);
            assert!((fast - brute).abs() < 1e-6, "emd {fast} vs brute {brute}");
        }
    }

    #[test]
    fn emd_with_unequal_sizes_and_masses() {
        // All of U's mass must travel to the single query point.
        let u = UncertainObject::new(vec![
            (Point::new(vec![0.0]), 0.25),
            (Point::new(vec![4.0]), 0.75),
        ]);
        let q = UncertainObject::uniform(vec![Point::new(vec![2.0])]);
        // cost = 0.25·2 + 0.75·2 = 2.
        assert!((emd(&u, &q) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn emd_identical_is_zero() {
        let u = obj1(&[1.0, 5.0, 9.0]);
        assert!(emd(&u, &u).abs() < 1e-9);
    }

    #[test]
    fn netflow_equals_emd() {
        let u = obj1(&[0.0, 3.0]);
        let q = obj1(&[1.0, 7.0]);
        assert_eq!(emd(&u, &q), netflow(&u, &q));
    }

    /// Figure 4's qualitative point: EMD can rank B ahead of A even when A
    /// stochastically dominates B — reproduced by the 2-D embedding below.
    #[test]
    fn figure4_emd_ranks_b_better() {
        // Distance matrices (rows: instance, cols: q1, q2):
        //   A: a1 → (1, 7), a2 → (7, 1)? The figure has EMD(A,Q) = 4 via
        //   0.5·1 + 0.5·7 and EMD(B,Q) = 3.75 via 0.5·1 + 0.5·6.5.
        // 1-D embedding: q1 = 0, q2 = 10;
        //   a1 = 1  → δ = (1, 9);  a2 = 3 → δ = (3, 7): EMD picks a1→q1, a2→q2
        //   b1 = 1  → δ = (1, 9);  b2 = 3.5 → δ = (3.5, 6.5).
        let q = obj1(&[0.0, 10.0]);
        let a = obj1(&[1.0, 3.0]);
        let b = obj1(&[1.0, 3.5]);
        let e_a = emd(&a, &q); // 0.5(1 + 7) = 4
        let e_b = emd(&b, &q); // 0.5(1 + 6.5) = 3.75
        assert!((e_a - 4.0).abs() < 1e-6);
        assert!((e_b - 3.75).abs() < 1e-6);
        assert!(e_b < e_a);
    }
}
