//! Selected pairs and counterparts (§3.4) — the machinery behind the
//! *counterpart computable* property of N3 functions.
//!
//! An N3 function scores `U` from a selected subset `σ_U(U_Q)` of its
//! pairwise distances. Given `V`'s selection `σ_V(V_Q)` and a match
//! `M_{U,V}`, the **counterpart** `σ_V(U_Q)` replaces each selected `V`
//! instance by its matched `U` instances: for each selected tuple
//! `m⟨δ(v, q), p⟩` and each match tuple `t` with `t.v = m.v`, it contains
//! `⟨δ(t.u, m.q), t.p · m.p / p(v)⟩`. A function is counterpart computable
//! when `f(U) = g(σ_U(U_Q)) ≤ g(σ_V(U_Q))` for every match — the key step
//! of Theorem 7's correctness proof, demonstrated here for EMD
//! (Example 4 / Figure 4(b)).

use osd_uncertain::UncertainObject;

/// One selected pair: instance indices into the object and query plus the
/// probability mass the selection assigns to the pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedPair {
    /// Instance index within the object.
    pub u: usize,
    /// Instance index within the query.
    pub q: usize,
    /// Mass carried by the pair.
    pub p: f64,
}

/// A match tuple between two objects: `(u_index, v_index, mass)`.
pub type ObjectMatchTuple = (usize, usize, f64);

/// The cost of a selection: `Σ δ(u, q) · p` — the aggregate `g` used by
/// EMD / Netflow.
pub fn selection_cost(
    object: &UncertainObject,
    query: &UncertainObject,
    selection: &[SelectedPair],
) -> f64 {
    selection
        .iter()
        .map(|s| {
            object.instances()[s.u]
                .point
                .dist(&query.instances()[s.q].point)
                * s.p
        })
        .sum()
}

/// The optimal EMD selection `σ_U(U_Q)`: the minimal-cost match between `U`
/// and `Q`, extracted from the min-cost-flow solution.
pub fn emd_selection(object: &UncertainObject, query: &UncertainObject) -> Vec<SelectedPair> {
    use osd_flow::MinCostFlow;
    use osd_uncertain::{quantize, SCALE};
    let m = object.len();
    let k = query.len();
    let u_caps = quantize(
        &object
            .instances()
            .iter()
            .map(|i| i.prob)
            .collect::<Vec<_>>(),
    );
    let q_caps = quantize(&query.instances().iter().map(|i| i.prob).collect::<Vec<_>>());
    let s = k + m;
    let t = k + m + 1;
    let mut g = MinCostFlow::new(k + m + 2);
    for (j, &cap) in q_caps.iter().enumerate() {
        g.add_edge(s, j, cap, 0.0);
    }
    for (i, &cap) in u_caps.iter().enumerate() {
        g.add_edge(k + i, t, cap, 0.0);
    }
    let mut handles = Vec::new();
    for (j, qi) in query.instances().iter().enumerate() {
        for (i, ui) in object.instances().iter().enumerate() {
            let h = g.add_edge(j, k + i, u64::MAX / 4, qi.point.dist(&ui.point));
            handles.push((i, j, h));
        }
    }
    let _ = g.min_cost_flow(s, t, SCALE);
    handles
        .into_iter()
        .filter_map(|(u, q, h)| {
            let f = g.flow_on(h);
            (f > 0).then(|| SelectedPair {
                u,
                q,
                p: f as f64 / SCALE as f64,
            })
        })
        .collect()
}

/// Builds the counterpart `σ_V(U_Q)` from `V`'s selection and a match
/// `M_{U,V}` (§3.4's construction).
pub fn counterpart(
    v: &UncertainObject,
    v_selection: &[SelectedPair],
    match_uv: &[ObjectMatchTuple],
) -> Vec<SelectedPair> {
    let mut out = Vec::new();
    for m in v_selection {
        let pv = v.instances()[m.u].prob;
        for &(tu, tv, tp) in match_uv {
            if tv == m.u {
                out.push(SelectedPair {
                    u: tu,
                    q: m.q,
                    p: tp * m.p / pv,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::n3::emd;
    use osd_geom::Point;

    fn obj1(points: &[f64]) -> UncertainObject {
        UncertainObject::uniform(points.iter().map(|&x| Point::new(vec![x])).collect())
    }

    /// Example 4 / Figure 4(b): the counterpart of A w.r.t. C under the
    /// crossing match `a1 → c2, a2 → c1` selects the crossed pairs, and its
    /// cost bounds EMD(A, Q) from above (counterpart computability).
    #[test]
    fn example4_counterpart_of_a_wrt_c() {
        // 1-D realisation of the Figure 4 structure: q1 = 0, q2 = 10.
        let q = obj1(&[0.0, 10.0]);
        let a = obj1(&[1.0, 3.0]); // δ(a1,·) = (1, 9), δ(a2,·) = (3, 7)
        let c = obj1(&[2.0, 3.5]); // δ(c1,·) = (2, 8), δ(c2,·) = (3.5, 6.5)

        // C's own optimal selection: c1 → q1, c2 → q2 (cost 0.5·2 + 0.5·6.5).
        let sel_c = emd_selection(&c, &q);
        let cost_c = selection_cost(&c, &q, &sel_c);
        assert!((cost_c - emd(&c, &q)).abs() < 1e-6);

        // The crossing match a1 → c2, a2 → c1 (each mass 0.5).
        let m_ac: Vec<ObjectMatchTuple> = vec![(0, 1, 0.5), (1, 0, 0.5)];
        let sigma_c_of_a = counterpart(&c, &sel_c, &m_ac);

        // Counterpart mass is conserved.
        let mass: f64 = sigma_c_of_a.iter().map(|s| s.p).sum();
        assert!((mass - 1.0).abs() < 1e-6);

        // Counterpart computability: EMD(A, Q) ≤ cost of the counterpart.
        let cost_counterpart = selection_cost(&a, &q, &sigma_c_of_a);
        assert!(
            emd(&a, &q) <= cost_counterpart + 1e-9,
            "EMD(A,Q) = {} must not exceed the counterpart cost {}",
            emd(&a, &q),
            cost_counterpart
        );
    }

    /// Counterpart computability over random matches: the object's own EMD
    /// never exceeds the cost of any counterpart selection.
    #[test]
    fn emd_is_counterpart_computable() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let q = obj1(&[rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
            let u = obj1(&[rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
            let v = obj1(&[rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
            let sel_v = emd_selection(&v, &q);
            // Either the straight or the crossing uniform match.
            let straight: Vec<ObjectMatchTuple> = vec![(0, 0, 0.5), (1, 1, 0.5)];
            let crossing: Vec<ObjectMatchTuple> = vec![(0, 1, 0.5), (1, 0, 0.5)];
            for m in [&straight, &crossing] {
                let cp = counterpart(&v, &sel_v, m);
                let cost = selection_cost(&u, &q, &cp);
                assert!(
                    emd(&u, &q) <= cost + 1e-6,
                    "counterpart computability violated: emd {} vs counterpart {}",
                    emd(&u, &q),
                    cost
                );
            }
        }
    }

    #[test]
    fn emd_selection_is_a_valid_transport() {
        let q = obj1(&[0.0, 4.0, 9.0]);
        let u = obj1(&[1.0, 5.0]);
        let sel = emd_selection(&u, &q);
        // Masses per query instance must equal its probability.
        for (j, qi) in q.instances().iter().enumerate() {
            let mass: f64 = sel.iter().filter(|s| s.q == j).map(|s| s.p).sum();
            assert!((mass - qi.prob).abs() < 1e-6, "query instance {j}");
        }
        // Masses per object instance must equal its probability.
        for (i, ui) in u.instances().iter().enumerate() {
            let mass: f64 = sel.iter().filter(|s| s.u == i).map(|s| s.p).sum();
            assert!((mass - ui.prob).abs() < 1e-6, "object instance {i}");
        }
        // Cost equals EMD.
        assert!((selection_cost(&u, &q, &sel) - emd(&u, &q)).abs() < 1e-6);
    }
}
