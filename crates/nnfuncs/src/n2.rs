//! Family N2 — possible-world based NN functions (§3.3).
//!
//! A possible world `W` picks one instance from each object and from the
//! query; the object's rank `r(U, W)` follows traditional NN semantics. The
//! parameterized ranking model of Li et al. \[23\] unifies the popular
//! instantiations: `Υ(U) = Σ_i ω(i) · Pr(r(U) = i)` with non-decreasing
//! position weights `ω`.
//!
//! The rank distribution is computed **exactly in polynomial time**: fixing
//! a query instance `q` and an instance `u ∈ U`, every other object `V` is
//! closer than `U` independently with probability `Pr(δ(V, q) < δ(u, q))`,
//! so the rank is `1 +` a Poisson-binomial variable, evaluated by an
//! `O(n²)` dynamic program. A brute-force possible-world enumerator serves
//! as a small-input oracle.
//!
//! Ranks use the standard tie rule `r(U, W) = 1 + |{V : δ(V, W) < δ(U, W)}|`
//! (ties share the better rank), applied consistently in both the factored
//! computation and the oracle.

use osd_uncertain::{for_each_world, UncertainObject};

/// Exact rank distribution of `objects[target]` w.r.t. `query`:
/// entry `i` is `Pr(r(U) = i + 1)`.
///
/// Runs in `O(|Q| · m · (n · m̄ + n²))` where `m̄` bounds instance counts.
///
/// # Panics
/// Panics if `target` is out of range.
pub fn rank_distribution(
    objects: &[UncertainObject],
    target: usize,
    query: &UncertainObject,
) -> Vec<f64> {
    assert!(target < objects.len(), "target index out of range");
    let n = objects.len();
    let mut rank = vec![0.0f64; n];
    let u_obj = &objects[target];
    for q in query.instances() {
        for u in u_obj.instances() {
            let d = q.point.dist(&u.point);
            // Pr(V strictly closer than d) per competitor.
            let closer: Vec<f64> = objects
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != target)
                .map(|(_, v)| {
                    v.instances()
                        .iter()
                        .filter(|vi| q.point.dist(&vi.point) < d)
                        .map(|vi| vi.prob)
                        .sum::<f64>()
                })
                .collect();
            // Poisson-binomial DP: f[k] = Pr(exactly k competitors closer).
            let mut f = vec![0.0f64; closer.len() + 1];
            f[0] = 1.0;
            for (idx, &b) in closer.iter().enumerate() {
                for k in (0..=idx).rev() {
                    let move_up = f[k] * b;
                    f[k + 1] += move_up;
                    f[k] -= move_up;
                }
            }
            let w = q.prob * u.prob;
            for (k, &fk) in f.iter().enumerate() {
                rank[k] += w * fk;
            }
        }
    }
    rank
}

/// Brute-force oracle: the same rank distribution via possible-world
/// enumeration. Exponential — only for small inputs/tests.
pub fn rank_distribution_bruteforce(
    objects: &[UncertainObject],
    target: usize,
    query: &UncertainObject,
) -> Vec<f64> {
    assert!(target < objects.len(), "target index out of range");
    let mut participants: Vec<&UncertainObject> = Vec::with_capacity(objects.len() + 1);
    participants.push(query);
    participants.extend(objects.iter());
    let mut rank = vec![0.0f64; objects.len()];
    for_each_world(&participants, |choice, prob| {
        let q = &query.instances()[choice[0]].point;
        let dists: Vec<f64> = objects
            .iter()
            .enumerate()
            .map(|(j, o)| q.dist(&o.instances()[choice[j + 1]].point))
            .collect();
        let du = dists[target];
        let closer = dists
            .iter()
            .enumerate()
            .filter(|&(j, &dv)| j != target && dv < du)
            .count();
        rank[closer] += prob;
    });
    rank
}

/// Position-weight schemes `ω(i)` for the parameterized ranking model.
/// Weights must be non-decreasing in `i` (better positions weigh less,
/// because smaller scores are better).
#[derive(Debug, Clone, PartialEq)]
pub enum N2Function {
    /// NN probability: `ω(1) = −1`, else 0 — `Υ(U) = −Pr(U is the NN)`.
    NnProbability,
    /// Expected rank: `ω(i) = i`.
    ExpectedRank,
    /// Global top-k: `ω(i) = −1` for `i ≤ k`, else 0 — `Υ(U) = −Pr(r(U) ≤ k)`.
    GlobalTopK(usize),
    /// Arbitrary non-decreasing weights; positions past the end reuse the
    /// last weight.
    Parameterized(Vec<f64>),
}

impl N2Function {
    /// The weight `ω(i)` for 1-based position `i`.
    pub fn weight(&self, i: usize) -> f64 {
        debug_assert!(i >= 1);
        match self {
            N2Function::NnProbability => {
                if i == 1 {
                    -1.0
                } else {
                    0.0
                }
            }
            N2Function::ExpectedRank => i as f64,
            N2Function::GlobalTopK(k) => {
                if i <= *k {
                    -1.0
                } else {
                    0.0
                }
            }
            N2Function::Parameterized(w) => {
                if w.is_empty() {
                    0.0
                } else {
                    w[(i - 1).min(w.len() - 1)]
                }
            }
        }
    }

    /// The parameterized ranking score `Υ(U) = Σ_i ω(i) Pr(r(U) = i)`
    /// (smaller is better).
    pub fn score(
        &self,
        objects: &[UncertainObject],
        target: usize,
        query: &UncertainObject,
    ) -> f64 {
        let rank = rank_distribution(objects, target, query);
        self.score_from_rank(&rank)
    }

    /// Applies the weights to a precomputed rank distribution.
    pub fn score_from_rank(&self, rank: &[f64]) -> f64 {
        rank.iter()
            .enumerate()
            .map(|(k, &p)| self.weight(k + 1) * p)
            .sum()
    }

    /// Display name for experiment output.
    pub fn name(&self) -> String {
        match self {
            N2Function::NnProbability => "nn-probability".into(),
            N2Function::ExpectedRank => "expected-rank".into(),
            N2Function::GlobalTopK(k) => format!("global-top-{k}"),
            N2Function::Parameterized(_) => "parameterized".into(),
        }
    }
}

/// Convenience: `Pr(U is the NN)` — the Figure 1 measure.
pub fn nn_probability(objects: &[UncertainObject], target: usize, query: &UncertainObject) -> f64 {
    rank_distribution(objects, target, query)[0]
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn obj(points: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::new(
            points
                .iter()
                .map(|&(x, p)| (Point::new(vec![x]), p))
                .collect(),
        )
    }

    /// Figure 1 of the paper: q single instance; A, B, C with two instances
    /// each at probability 0.6/0.4. NN probabilities: A 0.6·? … we encode
    /// distances directly as 1-D positions. From the figure narrative:
    /// A beats B with probability 0.6; C is NN under `max`.
    /// Distances (to q at 0): a1 = 1, a2 = 8; b1 = 2, b2 = 7; c1 = 3, c2 = 4.
    #[test]
    fn figure1_style_nn_probabilities() {
        let a = obj(&[(1.0, 0.6), (8.0, 0.4)]);
        let b = obj(&[(2.0, 0.6), (7.0, 0.4)]);
        let c = obj(&[(3.0, 0.6), (4.0, 0.4)]);
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let objs = vec![a, b, c];
        let exact: Vec<f64> = (0..3).map(|t| nn_probability(&objs, t, &q)).collect();
        let brute: Vec<f64> = (0..3)
            .map(|t| rank_distribution_bruteforce(&objs, t, &q)[0])
            .collect();
        for (e, b) in exact.iter().zip(brute.iter()) {
            assert!((e - b).abs() < 1e-12, "exact {e} vs brute {b}");
        }
        let total: f64 = exact.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "NN probabilities should sum to 1, got {total}"
        );
        // A is NN whenever a1 is drawn (prob 0.6) — nothing beats distance 1.
        assert!((exact[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn exact_matches_bruteforce_random_shape() {
        let a = obj(&[(1.0, 0.3), (6.0, 0.7)]);
        let b = obj(&[(2.0, 0.5), (5.0, 0.5)]);
        let c = obj(&[(3.0, 0.2), (4.0, 0.8)]);
        let q = UncertainObject::new(vec![
            (Point::new(vec![0.0]), 0.4),
            (Point::new(vec![10.0]), 0.6),
        ]);
        let objs = vec![a, b, c];
        for t in 0..3 {
            let exact = rank_distribution(&objs, t, &q);
            let brute = rank_distribution_bruteforce(&objs, t, &q);
            for (e, b) in exact.iter().zip(brute.iter()) {
                assert!((e - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rank_distribution_sums_to_one() {
        let objs = vec![
            obj(&[(1.0, 0.5), (2.0, 0.5)]),
            obj(&[(1.5, 0.5), (2.5, 0.5)]),
        ];
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        for t in 0..2 {
            let r = rank_distribution(&objs, t, &q);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_rank_scores() {
        // A strictly closer than B: E[rank(A)] = 1, E[rank(B)] = 2.
        let objs = vec![obj(&[(1.0, 1.0)]), obj(&[(2.0, 1.0)])];
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let f = N2Function::ExpectedRank;
        assert!((f.score(&objs, 0, &q) - 1.0).abs() < 1e-12);
        assert!((f.score(&objs, 1, &q) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn global_topk_reduces_to_nn_probability_at_k1() {
        let objs = vec![
            obj(&[(1.0, 0.5), (4.0, 0.5)]),
            obj(&[(2.0, 0.5), (3.0, 0.5)]),
        ];
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        for t in 0..2 {
            let g1 = N2Function::GlobalTopK(1).score(&objs, t, &q);
            let nn = N2Function::NnProbability.score(&objs, t, &q);
            assert!((g1 - nn).abs() < 1e-12);
        }
    }

    #[test]
    fn parameterized_weights_clamp() {
        let f = N2Function::Parameterized(vec![0.0, 1.0]);
        assert_eq!(f.weight(1), 0.0);
        assert_eq!(f.weight(2), 1.0);
        assert_eq!(f.weight(9), 1.0); // clamped to last
    }
}
