//! Monte-Carlo estimation of the N2 rank distribution.
//!
//! The exact Poisson-binomial computation ([`crate::rank_distribution`]) is
//! `O(|Q|·m·n²)`; for scoring large candidate sets against many objects a
//! sampled estimate is often enough. Worlds are drawn directly from the
//! instance distributions (§3.3's possible-world semantics), so the
//! estimator is unbiased; the standard error of each rank probability is
//! `≤ 1/(2√samples)`.

use osd_uncertain::UncertainObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws an instance index according to the instance probabilities.
fn draw<R: Rng>(rng: &mut R, obj: &UncertainObject) -> usize {
    let mut t: f64 = rng.gen_range(0.0..1.0);
    for (i, inst) in obj.instances().iter().enumerate() {
        if t < inst.prob {
            return i;
        }
        t -= inst.prob;
    }
    obj.len() - 1
}

/// Monte-Carlo estimate of `Pr(r(U) = i + 1)` for `objects[target]`,
/// from `samples` sampled possible worlds (deterministic in `seed`).
///
/// # Panics
/// Panics if `target` is out of range or `samples` is zero.
pub fn rank_distribution_sampled(
    objects: &[UncertainObject],
    target: usize,
    query: &UncertainObject,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(target < objects.len(), "target index out of range");
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tally = vec![0u64; objects.len()];
    for _ in 0..samples {
        let qp = &query.instances()[draw(&mut rng, query)].point;
        let du = {
            let u = &objects[target];
            qp.dist(&u.instances()[draw(&mut rng, u)].point)
        };
        let closer = objects
            .iter()
            .enumerate()
            .filter(|&(j, o)| j != target && qp.dist(&o.instances()[draw(&mut rng, o)].point) < du)
            .count();
        tally[closer] += 1;
    }
    tally
        .into_iter()
        .map(|c| c as f64 / samples as f64)
        .collect()
}

/// Monte-Carlo NN probability: `Pr(r(U) = 1)`.
pub fn nn_probability_sampled(
    objects: &[UncertainObject],
    target: usize,
    query: &UncertainObject,
    samples: usize,
    seed: u64,
) -> f64 {
    rank_distribution_sampled(objects, target, query, samples, seed)[0]
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::n2::rank_distribution;
    use osd_geom::Point;

    fn obj(points: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::new(
            points
                .iter()
                .map(|&(x, p)| (Point::new(vec![x]), p))
                .collect(),
        )
    }

    #[test]
    fn converges_to_exact() {
        let objs = vec![
            obj(&[(1.0, 0.3), (6.0, 0.7)]),
            obj(&[(2.0, 0.5), (5.0, 0.5)]),
            obj(&[(3.0, 0.2), (4.0, 0.8)]),
        ];
        let q = UncertainObject::new(vec![
            (Point::new(vec![0.0]), 0.4),
            (Point::new(vec![10.0]), 0.6),
        ]);
        for target in 0..objs.len() {
            let exact = rank_distribution(&objs, target, &q);
            let est = rank_distribution_sampled(&objs, target, &q, 60_000, 7);
            for (e, s) in exact.iter().zip(est.iter()) {
                assert!(
                    (e - s).abs() < 0.02,
                    "target {target}: exact {e} vs sampled {s}"
                );
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let objs = vec![obj(&[(1.0, 1.0)]), obj(&[(2.0, 1.0)])];
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let a = rank_distribution_sampled(&objs, 0, &q, 500, 42);
        let b = rank_distribution_sampled(&objs, 0, &q, 500, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn certain_ordering_is_exact_even_with_few_samples() {
        let objs = vec![obj(&[(1.0, 1.0)]), obj(&[(2.0, 1.0)]), obj(&[(3.0, 1.0)])];
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let r = rank_distribution_sampled(&objs, 1, &q, 50, 3);
        assert_eq!(r, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn distribution_sums_to_one() {
        let objs = vec![
            obj(&[(1.0, 0.5), (4.0, 0.5)]),
            obj(&[(2.0, 0.5), (3.0, 0.5)]),
        ];
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let r = rank_distribution_sampled(&objs, 0, &q, 1_000, 5);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
