//! # osd-nnfuncs
//!
//! The three NN-function families that the spatial dominance operators of
//! *Optimal Spatial Dominance* (SIGMOD 2015) are optimal against:
//!
//! * [`n1`] — all-pairs aggregates over the distance distribution `U_Q`:
//!   min, max, mean (expected distance), φ-quantile and stable linear
//!   combinations (§3.2);
//! * [`n2`] — possible-world based functions via the parameterized ranking
//!   model: NN probability, expected rank, global top-k, arbitrary
//!   non-decreasing position weights; exact polynomial computation through a
//!   Poisson-binomial rank-distribution DP plus a brute-force world
//!   enumeration oracle (§3.3);
//! * [`n3`] — selected-pairs functions: Hausdorff, Sum-of-Minimal and the
//!   Earth Mover's / Netflow distance solved by exact min-cost max-flow
//!   (§3.4, Appendix A).
//!
//! Scores follow the paper's convention: **smaller is better** (probability
//! based scores are negated inside the parameterized weights).
//!
//! ```
//! use osd_geom::Point;
//! use osd_nnfuncs::{emd, hausdorff, nn_probability, N1Function};
//! use osd_uncertain::UncertainObject;
//!
//! let q = UncertainObject::uniform(vec![Point::from([0.0])]);
//! let a = UncertainObject::uniform(vec![Point::from([1.0]), Point::from([3.0])]);
//! let b = UncertainObject::uniform(vec![Point::from([2.0]), Point::from([4.0])]);
//!
//! // N1: aggregate functions over all pairwise distances.
//! assert_eq!(N1Function::Mean.score(&a, &q), 2.0);
//! assert_eq!(N1Function::Quantile(0.5).score(&b, &q), 2.0);
//!
//! // N2: possible-world based — Pr(a is the nearest neighbour).
//! let objs = vec![a.clone(), b.clone()];
//! assert!(nn_probability(&objs, 0, &q) > 0.5);
//!
//! // N3: selected-pairs distances.
//! assert_eq!(hausdorff(&a, &q), 3.0);
//! assert!((emd(&a, &q) - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod counterpart;
pub mod n1;
pub mod n2;
pub mod n3;
pub mod sampling;

pub use counterpart::{counterpart, emd_selection, selection_cost, SelectedPair};
pub use n1::{nn_under, LinearCombination, N1Function, StableAggregate};
pub use n2::{nn_probability, rank_distribution, rank_distribution_bruteforce, N2Function};
pub use n3::{emd, emd_bruteforce_uniform, hausdorff, netflow, sum_min};
pub use sampling::{nn_probability_sampled, rank_distribution_sampled};
