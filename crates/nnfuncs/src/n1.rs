//! Family N1 — all-pairs based NN functions (§3.2).
//!
//! `f(U) = g(U_Q)` for a *stable* aggregate `g` (Definition 8): one that
//! respects the stochastic order. The classic instantiations are `min`,
//! `max`, `mean` (expected distance) and the φ-quantile (Definition 10),
//! plus arbitrary non-negative linear combinations of them (any convex
//! combination of stable aggregates is stable).

use osd_uncertain::{DistanceDistribution, UncertainObject};

/// A stable aggregate over a distance distribution: `X ⪯_st Y` must imply
/// `g(X) ≤ g(Y)`.
pub trait StableAggregate {
    /// Aggregates the distribution into a score (smaller is better).
    fn aggregate(&self, dist: &DistanceDistribution) -> f64;
    /// Human-readable name, for experiment output.
    fn name(&self) -> String;
}

/// The premier N1 aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum N1Function {
    /// Smallest pairwise distance.
    Min,
    /// Largest pairwise distance.
    Max,
    /// Expected (mean) distance.
    Mean,
    /// φ-quantile distance (Definition 10), `0 < φ ≤ 1`.
    Quantile(f64),
}

impl StableAggregate for N1Function {
    fn aggregate(&self, dist: &DistanceDistribution) -> f64 {
        match *self {
            N1Function::Min => dist.min(),
            N1Function::Max => dist.max(),
            N1Function::Mean => dist.mean(),
            N1Function::Quantile(phi) => dist.quantile(phi),
        }
    }

    fn name(&self) -> String {
        match *self {
            N1Function::Min => "min".into(),
            N1Function::Max => "max".into(),
            N1Function::Mean => "mean".into(),
            N1Function::Quantile(phi) => format!("quantile({phi})"),
        }
    }
}

impl N1Function {
    /// Scores `object` against `query`: `f(U) = g(U_Q)`.
    pub fn score(&self, object: &UncertainObject, query: &UncertainObject) -> f64 {
        self.aggregate(&DistanceDistribution::between(object, query))
    }
}

/// A non-negative linear combination of stable aggregates — itself stable,
/// demonstrating that N1 is an infinite family.
pub struct LinearCombination {
    terms: Vec<(f64, N1Function)>,
}

impl LinearCombination {
    /// Creates `Σ w_i · g_i` with all `w_i ≥ 0`.
    ///
    /// # Panics
    /// Panics if empty or any weight is negative.
    pub fn new(terms: Vec<(f64, N1Function)>) -> Self {
        assert!(!terms.is_empty(), "a combination needs at least one term");
        assert!(
            terms.iter().all(|&(w, _)| w >= 0.0),
            "weights must be non-negative"
        );
        LinearCombination { terms }
    }

    /// Scores `object` against `query`.
    pub fn score(&self, object: &UncertainObject, query: &UncertainObject) -> f64 {
        let d = DistanceDistribution::between(object, query);
        self.aggregate(&d)
    }
}

impl StableAggregate for LinearCombination {
    fn aggregate(&self, dist: &DistanceDistribution) -> f64 {
        self.terms.iter().map(|(w, g)| w * g.aggregate(dist)).sum()
    }

    fn name(&self) -> String {
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|(w, g)| format!("{w}*{}", g.name()))
            .collect();
        parts.join(" + ")
    }
}

/// Returns the NN object index under `f` (smallest score; ties to the lower
/// index). `None` when `objects` is empty.
pub fn nn_under<F: Fn(&UncertainObject) -> f64>(
    objects: &[UncertainObject],
    f: F,
) -> Option<usize> {
    objects
        .iter()
        .enumerate()
        .map(|(i, o)| (i, f(o)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn obj(points: &[f64]) -> UncertainObject {
        UncertainObject::uniform(points.iter().map(|&x| Point::new(vec![x])).collect())
    }

    #[test]
    fn min_max_mean_on_line() {
        let q = obj(&[0.0]);
        let a = obj(&[1.0, 3.0]);
        assert_eq!(N1Function::Min.score(&a, &q), 1.0);
        assert_eq!(N1Function::Max.score(&a, &q), 3.0);
        assert_eq!(N1Function::Mean.score(&a, &q), 2.0);
    }

    #[test]
    fn quantile_on_line() {
        let q = obj(&[0.0]);
        let a = obj(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(N1Function::Quantile(0.25).score(&a, &q), 1.0);
        assert_eq!(N1Function::Quantile(0.5).score(&a, &q), 2.0);
        assert_eq!(N1Function::Quantile(0.75).score(&a, &q), 3.0);
        assert_eq!(N1Function::Quantile(1.0).score(&a, &q), 4.0);
    }

    /// Figure 1's observation: under `max`, C is the NN; under `mean`
    /// (expected), B is the NN — different functions pick different objects.
    #[test]
    fn different_functions_different_nn() {
        let q = obj(&[0.0]);
        // A: close but with a far tail; B: best mean; C: best max.
        let a = UncertainObject::new(vec![
            (Point::new(vec![1.0]), 0.6),
            (Point::new(vec![10.0]), 0.4),
        ]);
        let b = UncertainObject::new(vec![
            (Point::new(vec![2.0]), 0.6),
            (Point::new(vec![5.0]), 0.4),
        ]);
        let c = UncertainObject::new(vec![
            (Point::new(vec![4.0]), 0.6),
            (Point::new(vec![4.5]), 0.4),
        ]);
        let objs = vec![a, b, c];
        let nn_max = nn_under(&objs, |o| N1Function::Max.score(o, &q)).unwrap();
        let nn_mean = nn_under(&objs, |o| N1Function::Mean.score(o, &q)).unwrap();
        let nn_min = nn_under(&objs, |o| N1Function::Min.score(o, &q)).unwrap();
        assert_eq!(nn_max, 2);
        assert_eq!(nn_mean, 1);
        assert_eq!(nn_min, 0);
    }

    #[test]
    fn linear_combination_is_stable_shape() {
        let q = obj(&[0.0]);
        let a = obj(&[1.0, 3.0]);
        let f = LinearCombination::new(vec![(0.5, N1Function::Min), (0.5, N1Function::Max)]);
        assert_eq!(f.score(&a, &q), 2.0);
        assert!(f.name().contains("min"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = LinearCombination::new(vec![(-1.0, N1Function::Min)]);
    }
}
