//! Property tests for the NN-function families: exact computations vs
//! brute-force oracles, and the stability properties claimed in §3.

use osd_geom::Point;
use osd_nnfuncs::{
    emd, emd_bruteforce_uniform, rank_distribution, rank_distribution_bruteforce, N1Function,
    N2Function,
};
use osd_uncertain::{DistanceDistribution, UncertainObject};
use proptest::prelude::*;

/// A small random 2-D object: up to `max_m` instances with random masses.
fn object_strategy(max_m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec(((0.0f64..100.0, 0.0f64..100.0), 0.05f64..1.0), 1..max_m).prop_map(
        |insts| {
            let total: f64 = insts.iter().map(|&(_, w)| w).sum();
            UncertainObject::new(
                insts
                    .into_iter()
                    .map(|((x, y), w)| (Point::new(vec![x, y]), w / total))
                    .collect(),
            )
        },
    )
}

/// A uniform-mass object with exactly `m` instances.
fn uniform_object(m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), m..=m).prop_map(|pts| {
        UncertainObject::uniform(
            pts.into_iter()
                .map(|(x, y)| Point::new(vec![x, y]))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// N2: Poisson-binomial rank distribution equals world enumeration.
    #[test]
    fn prop_rank_distribution_exact(
        objs in prop::collection::vec(object_strategy(4), 2..4),
        q in object_strategy(4),
    ) {
        for target in 0..objs.len() {
            let fast = rank_distribution(&objs, target, &q);
            let brute = rank_distribution_bruteforce(&objs, target, &q);
            prop_assert_eq!(fast.len(), brute.len());
            for (f, b) in fast.iter().zip(brute.iter()) {
                prop_assert!((f - b).abs() < 1e-9, "rank dist mismatch: {} vs {}", f, b);
            }
            prop_assert!((fast.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    /// N3: min-cost-flow EMD equals permutation brute force for uniform
    /// equal-size objects.
    #[test]
    fn prop_emd_exact(u in uniform_object(4), q in uniform_object(4)) {
        let fast = emd(&u, &q);
        let brute = emd_bruteforce_uniform(&u, &q);
        prop_assert!((fast - brute).abs() < 1e-6, "emd {} vs brute {}", fast, brute);
    }

    /// EMD is a metric on uniform same-size objects: symmetry and the
    /// triangle inequality.
    #[test]
    fn prop_emd_metric(
        a in uniform_object(3), b in uniform_object(3), c in uniform_object(3),
    ) {
        let ab = emd(&a, &b);
        let ba = emd(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        let bc = emd(&b, &c);
        let ac = emd(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    /// N1 stability: moving an object strictly closer to the query can only
    /// improve (not worsen) every N1 score.
    #[test]
    fn prop_n1_monotone_under_shift(
        pts in prop::collection::vec((10.0f64..100.0, 10.0f64..100.0), 1..6),
        q in uniform_object(3),
        shrink in 0.1f64..1.0,
    ) {
        // `closer` scales every instance toward the query centroid — its
        // distance distribution is stochastically dominated by the original.
        let centroid = {
            let mut c = vec![0.0; 2];
            for i in q.instances() {
                c[0] += i.point.coord(0) * i.prob;
                c[1] += i.point.coord(1) * i.prob;
            }
            c
        };
        let orig = UncertainObject::uniform(
            pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect());
        let closer = UncertainObject::uniform(pts.iter().map(|&(x, y)| {
            Point::new(vec![
                centroid[0] + (x - centroid[0]) * shrink,
                centroid[1] + (y - centroid[1]) * shrink,
            ])
        }).collect());
        // Shrinking toward the centroid does NOT always stochastically
        // dominate (instances can move away from off-centroid query points),
        // so guard the property on the actual order.
        let d_orig = DistanceDistribution::between(&orig, &q);
        let d_closer = DistanceDistribution::between(&closer, &q);
        if osd_uncertain::stochastically_dominates(&d_closer, &d_orig) {
            for f in [N1Function::Min, N1Function::Max, N1Function::Mean,
                      N1Function::Quantile(0.3), N1Function::Quantile(0.8)] {
                prop_assert!(f.score(&closer, &q) <= f.score(&orig, &q) + 1e-9,
                    "{:?} violated stability", f);
            }
        }
    }

    /// N2 scores derived from a rank distribution respect first-order
    /// dominance of rank distributions (stable aggregate property).
    #[test]
    fn prop_n2_weights_nondecreasing_consistency(
        objs in prop::collection::vec(object_strategy(3), 2..4),
        q in object_strategy(3),
        k in 1usize..4,
    ) {
        // Global top-k score must be monotone in k (more positions counted
        // can only increase the captured probability).
        for t in 0..objs.len() {
            let s_k = N2Function::GlobalTopK(k).score(&objs, t, &q);
            let s_k1 = N2Function::GlobalTopK(k + 1).score(&objs, t, &q);
            prop_assert!(s_k1 <= s_k + 1e-12);
        }
    }
}
