//! Epoch-based snapshot publishing for the columnar store.
//!
//! Mutation never edits a shared [`InstanceStore`] in place. A writer
//! holds an `Arc<InstanceStore>` chain head, builds the *next* snapshot
//! through the copy-on-write builders here ([`append`], [`remove`],
//! [`replace`]), and publishes it atomically; readers pin whatever
//! snapshot was current when they started and never observe a partial
//! mutation. The builders are the only sanctioned `Arc::make_mut` sites
//! in the workspace (xtask rule `no-raw-cow-outside-epoch`), so every
//! mutation path is forced through this module and inherits its
//! semantics: if the head `Arc` is uniquely owned the columns are edited
//! in place (no copy), otherwise the store is cloned once and readers
//! keep the old allocation.
//!
//! [`EpochLog`] is the version counter that rides next to the chain
//! head: each publish bumps the epoch and records what changed
//! ([`Change`]), and a standing query can ask
//! [`EpochLog::changes_since`] for the delta between the epoch it last
//! saw and now — the seam the incremental continuous-NNC repair hangs
//! off. The log is bounded; when a reader has fallen further behind than
//! the retained window, `changes_since` says so (`None`) and the reader
//! must fall back to a full re-read of the snapshot.

use crate::object::UncertainObject;
use crate::store::{InstanceStore, StoreError};
use std::collections::VecDeque;
use std::sync::Arc;

/// One published mutation, in terms of *logical object ids* (stable
/// across the object's lifetime, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    /// A new object was inserted under this id.
    Inserted(usize),
    /// The object with this id was deleted.
    Deleted(usize),
    /// The object with this id was replaced in place.
    Updated(usize),
}

impl Change {
    /// The logical object id the change concerns.
    #[inline]
    pub fn id(&self) -> usize {
        match *self {
            Change::Inserted(id) | Change::Deleted(id) | Change::Updated(id) => id,
        }
    }

    /// Short static name of the change kind — the value repair traces
    /// attach to their per-change events.
    #[inline]
    pub fn label(&self) -> &'static str {
        match self {
            Change::Inserted(_) => "insert",
            Change::Deleted(_) => "delete",
            Change::Updated(_) => "update",
        }
    }
}

/// How many published changes an [`EpochLog`] retains for incremental
/// readers before they must fall back to a full refresh.
pub const DEFAULT_LOG_CAP: usize = 1024;

/// A bounded, versioned log of published mutations.
///
/// Invariant: `epoch == base + log.len()`; entry `log[k]` is the change
/// that produced epoch `base + k + 1`. A fresh index starts at epoch 0
/// with an empty log.
#[derive(Debug, Clone)]
pub struct EpochLog {
    /// Epoch of the change *preceding* the oldest retained entry.
    base: u64,
    /// Retained changes, oldest first.
    log: VecDeque<Change>,
    /// Retention bound; older entries are dropped from the front.
    cap: usize,
}

impl Default for EpochLog {
    fn default() -> Self {
        EpochLog::new(DEFAULT_LOG_CAP)
    }
}

impl EpochLog {
    /// An empty log at epoch 0 retaining at most `cap` changes.
    ///
    /// # Panics
    /// Panics if `cap` is zero — a log that cannot retain even the most
    /// recent change would force every reader to full-refresh.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "epoch log capacity must be positive");
        EpochLog {
            base: 0,
            log: VecDeque::with_capacity(cap.min(64)),
            cap,
        }
    }

    /// The current epoch: the number of changes ever published.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.base + self.log.len() as u64
    }

    /// Records one published change, bumping the epoch.
    pub fn record(&mut self, change: Change) {
        if self.log.len() == self.cap {
            self.log.pop_front();
            self.base += 1;
        }
        self.log.push_back(change);
    }

    /// The changes published after epoch `since`, oldest first.
    ///
    /// Returns `None` when the delta is not reconstructible: `since` is
    /// older than the retained window, or from the future (a reader
    /// handed a log from a different index). `Some(vec![])` means the
    /// reader is already current.
    pub fn changes_since(&self, since: u64) -> Option<Vec<Change>> {
        if since < self.base || since > self.epoch() {
            return None;
        }
        let skip = (since - self.base) as usize;
        Some(self.log.iter().skip(skip).copied().collect())
    }
}

/// The distinct logical object ids touched by a change window, sorted
/// ascending. This is the invalidation set of an incremental cache
/// advance: an id absent from it had no insert, delete or update in the
/// window, so every snapshot-pure derived value of that object is
/// bit-identical across the window's epochs.
pub fn touched_ids(changes: &[Change]) -> Vec<usize> {
    let mut ids: Vec<usize> = changes.iter().map(Change::id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Builds the next snapshot with one appended object, returning its row
/// (== its logical id for a flat store that has never compacted).
///
/// Copy-on-write: edits in place iff `head` is uniquely owned.
///
/// # Errors
/// [`StoreError::DimensionMismatch`] if the object's dimensionality
/// differs from the store's; the snapshot is unchanged.
pub fn append(
    head: &mut Arc<InstanceStore>,
    object: &UncertainObject,
) -> Result<usize, StoreError> {
    // Probe before cloning: a dimension mismatch must not cost a copy.
    if object.dim() != head.dim() {
        return Err(StoreError::DimensionMismatch {
            expected: head.dim(),
            found: object.dim(),
        });
    }
    Arc::make_mut(head).push_object(object)
}

/// Builds the next snapshot with the object at `row` spliced out
/// (tombstone compaction: later rows shift down by one).
///
/// # Panics
/// Panics if `row` is out of bounds.
pub fn remove(head: &mut Arc<InstanceStore>, row: usize) {
    assert!(row < head.len(), "object row out of bounds");
    Arc::make_mut(head).remove_object(row);
}

/// Builds the next snapshot with the object at `row` replaced in place.
///
/// # Errors
/// [`StoreError::DimensionMismatch`] if the object's dimensionality
/// differs from the store's; the snapshot is unchanged.
///
/// # Panics
/// Panics if `row` is out of bounds.
pub fn replace(
    head: &mut Arc<InstanceStore>,
    row: usize,
    object: &UncertainObject,
) -> Result<(), StoreError> {
    assert!(row < head.len(), "object row out of bounds");
    if object.dim() != head.dim() {
        return Err(StoreError::DimensionMismatch {
            expected: head.dim(),
            found: object.dim(),
        });
    }
    Arc::make_mut(head).replace_object(row, object)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osd_geom::Point;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn obj(x: f64, y: f64) -> UncertainObject {
        UncertainObject::uniform(vec![p2(x, y), p2(x + 1.0, y)])
    }

    fn head() -> Arc<InstanceStore> {
        Arc::new(InstanceStore::from_objects(&[obj(0.0, 0.0), obj(5.0, 5.0)]).unwrap())
    }

    #[test]
    fn builders_cow_only_when_shared() {
        let mut h = head();
        let pinned = Arc::clone(&h);
        let id = append(&mut h, &obj(9.0, 9.0)).unwrap();
        assert_eq!(id, 2);
        // The pinned reader kept the old snapshot untouched.
        assert!(!Arc::ptr_eq(&h, &pinned));
        assert_eq!(pinned.len(), 2);
        assert_eq!(h.len(), 3);
        h.validate().unwrap();
        // Uniquely owned now: further edits reuse the allocation.
        let before = Arc::as_ptr(&h);
        remove(&mut h, 0);
        assert_eq!(Arc::as_ptr(&h), before);
        assert_eq!(h.len(), 2);
        h.validate().unwrap();
        replace(&mut h, 0, &obj(-3.0, -3.0)).unwrap();
        assert_eq!(h.object(0).row(0), &[-3.0, -3.0]);
        h.validate().unwrap();
    }

    #[test]
    fn builders_reject_dimension_mismatch_without_copying() {
        let mut h = head();
        let pinned = Arc::clone(&h);
        let bad = UncertainObject::uniform(vec![Point::new(vec![1.0])]);
        assert!(append(&mut h, &bad).is_err());
        assert!(replace(&mut h, 0, &bad).is_err());
        // No snapshot was built for the failed mutations.
        assert!(Arc::ptr_eq(&h, &pinned));
    }

    #[test]
    fn epoch_log_counts_and_replays() {
        let mut log = EpochLog::new(4);
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.changes_since(0), Some(vec![]));
        log.record(Change::Inserted(0));
        log.record(Change::Updated(0));
        log.record(Change::Deleted(0));
        assert_eq!(log.epoch(), 3);
        assert_eq!(
            log.changes_since(1),
            Some(vec![Change::Updated(0), Change::Deleted(0)])
        );
        assert_eq!(log.changes_since(3), Some(vec![]));
        // Future epochs are not reconstructible.
        assert_eq!(log.changes_since(4), None);
    }

    #[test]
    fn epoch_log_bounds_retention() {
        let mut log = EpochLog::new(2);
        for id in 0..5 {
            log.record(Change::Inserted(id));
        }
        assert_eq!(log.epoch(), 5);
        // Only the last two changes are retained.
        assert_eq!(
            log.changes_since(3),
            Some(vec![Change::Inserted(3), Change::Inserted(4)])
        );
        assert_eq!(log.changes_since(2), None);
        assert_eq!(log.changes_since(0), None);
    }

    #[test]
    fn change_reports_its_id() {
        assert_eq!(Change::Inserted(7).id(), 7);
        assert_eq!(Change::Deleted(3).id(), 3);
        assert_eq!(Change::Updated(0).id(), 0);
    }
}
