//! Matches between discrete random variables and the match order
//! (Definitions 4 and 9), plus the constructive half of Theorem 1
//! (match order ⇔ usual stochastic order).

use crate::distribution::DistanceDistribution;
use crate::stochastic::CDF_EPS;

/// One tuple `t⟨x, y, p⟩` of a match: atom index into each side plus the
/// probability mass routed between them.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchTuple {
    /// Index of the atom of `X`.
    pub x: usize,
    /// Index of the atom of `Y`.
    pub y: usize,
    /// Probability mass carried by the tuple.
    pub p: f64,
}

/// Constructs a match `M_{X,Y}` witnessing `X ⪯_M Y` — every tuple pairs an
/// `X` value that is `≤` its `Y` value — or returns `None` when no such
/// match exists (equivalently, by Theorem 1, when `X ⪯̸_st Y`).
///
/// Mirrors the constructive proof in Appendix B.1: walk the atoms of `Y` in
/// non-decreasing order and greedily consume mass from the smallest
/// still-unconsumed atoms of `X`, splitting atoms when masses differ.
pub fn construct_match(
    x: &DistanceDistribution,
    y: &DistanceDistribution,
) -> Option<Vec<MatchTuple>> {
    let xs = x.atoms();
    let ys = y.atoms();
    let mut tuples = Vec::new();
    let mut i = 0usize; // current X atom
    let mut x_rem = xs[0].1; // unconsumed mass of the current X atom
    for (j, &(yv, yp)) in ys.iter().enumerate() {
        let mut need = yp;
        while need > CDF_EPS {
            if i >= xs.len() {
                // Exhausted X before Y — impossible when both sum to 1 up to
                // rounding; treat as rounding and stop.
                break;
            }
            if xs[i].0 > yv + CDF_EPS {
                // The cheapest remaining X mass already exceeds y's value:
                // there is no valid match (the greedy pairing is optimal).
                return None;
            }
            let take = need.min(x_rem);
            tuples.push(MatchTuple {
                x: i,
                y: j,
                p: take,
            });
            need -= take;
            x_rem -= take;
            if x_rem <= CDF_EPS {
                i += 1;
                if i < xs.len() {
                    x_rem = xs[i].1;
                }
            }
        }
    }
    Some(tuples)
}

/// Decides the match order `X ⪯_M Y` (Definition 9).
///
/// By Theorem 1 this is equivalent to `X ⪯_st Y`; the implementation builds
/// the explicit greedy match so tests can verify the equivalence rather than
/// assume it.
pub fn match_dominates(x: &DistanceDistribution, y: &DistanceDistribution) -> bool {
    construct_match(x, y).is_some()
}

/// Verifies that `tuples` form a *valid match* between `x` and `y`
/// (Definition 4): per-atom masses on both sides are exactly consumed.
pub fn is_valid_match(
    x: &DistanceDistribution,
    y: &DistanceDistribution,
    tuples: &[MatchTuple],
) -> bool {
    let mut used_x = vec![0.0f64; x.atoms().len()];
    let mut used_y = vec![0.0f64; y.atoms().len()];
    for t in tuples {
        if t.x >= used_x.len() || t.y >= used_y.len() || t.p <= 0.0 {
            return false;
        }
        used_x[t.x] += t.p;
        used_y[t.y] += t.p;
    }
    let eps = 1e-6;
    used_x
        .iter()
        .zip(x.atoms())
        .all(|(&u, &(_, p))| (u - p).abs() <= eps)
        && used_y
            .iter()
            .zip(y.atoms())
            .all(|(&u, &(_, p))| (u - p).abs() <= eps)
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::stochastic::stochastically_dominates;

    fn d(atoms: &[(f64, f64)]) -> DistanceDistribution {
        DistanceDistribution::from_atoms(atoms.to_vec())
    }

    #[test]
    fn match_exists_when_dominating() {
        let x = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let y = d(&[(2.0, 0.5), (3.0, 0.5)]);
        let m = construct_match(&x, &y).expect("match should exist");
        assert!(is_valid_match(&x, &y, &m));
        for t in &m {
            assert!(x.atoms()[t.x].0 <= y.atoms()[t.y].0 + 1e-9);
        }
    }

    #[test]
    fn no_match_when_not_dominating() {
        let x = d(&[(5.0, 1.0)]);
        let y = d(&[(1.0, 0.5), (10.0, 0.5)]);
        assert!(construct_match(&x, &y).is_none());
    }

    #[test]
    fn splitting_atoms_figure7_style() {
        // A = {0.5, 0.3, 0.2}, B = {0.5, 0.5} — the match must split an atom.
        let x = d(&[(1.0, 0.5), (2.0, 0.3), (3.0, 0.2)]);
        let y = d(&[(2.0, 0.5), (4.0, 0.5)]);
        let m = construct_match(&x, &y).expect("match exists");
        assert!(is_valid_match(&x, &y, &m));
        // Mass on y-atom 0 (value 2) must come from x values ≤ 2.
        for t in &m {
            assert!(x.atoms()[t.x].0 <= y.atoms()[t.y].0 + 1e-9);
        }
    }

    /// Theorem 1: the greedy match exists exactly when `⪯_st` holds,
    /// across a spread of hand-picked cases.
    #[test]
    fn theorem1_equivalence_cases() {
        let cases = vec![
            (d(&[(1.0, 0.3), (4.0, 0.7)]), d(&[(2.0, 0.5), (3.0, 0.5)])),
            (d(&[(1.0, 1.0)]), d(&[(0.5, 0.5), (9.0, 0.5)])),
            (d(&[(1.0, 0.5), (2.0, 0.5)]), d(&[(1.0, 0.5), (2.0, 0.5)])),
            (d(&[(0.0, 0.9), (100.0, 0.1)]), d(&[(50.0, 1.0)])),
            (d(&[(3.0, 0.25), (4.0, 0.75)]), d(&[(3.0, 0.2), (4.0, 0.8)])),
        ];
        for (x, y) in cases {
            assert_eq!(
                match_dominates(&x, &y),
                stochastically_dominates(&x, &y),
                "mismatch for {x:?} vs {y:?}"
            );
            assert_eq!(
                match_dominates(&y, &x),
                stochastically_dominates(&y, &x),
                "mismatch (reversed) for {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn invalid_match_detected() {
        let x = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let y = d(&[(2.0, 1.0)]);
        // Figure 7(c)-style: masses not conserved.
        let bad = vec![MatchTuple { x: 0, y: 0, p: 0.5 }];
        assert!(!is_valid_match(&x, &y, &bad));
    }
}
