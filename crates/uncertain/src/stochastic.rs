//! The usual stochastic order `X ⪯_st Y` (Definition 1) and its single-scan
//! decision procedure (§5.1.1).
//!
//! `X ⪯_st Y` iff `Pr(X ≤ λ) ≥ Pr(Y ≤ λ)` for every `λ`. On discrete
//! distributions with sorted atoms this is decided with one merged scan of
//! the two supports, tracking the CDF gap
//! `F(λ) = Pr(X ≤ λ) − Pr(Y ≤ λ)` and rejecting on the first `λ` with
//! `F(λ) < 0`. Theorem 10 shows Ω(n log n) is unavoidable for
//! comparison-based algorithms, so scanning pre-sorted atoms is optimal.

use crate::distribution::DistanceDistribution;

/// Tolerance absorbing float accumulation error in CDF comparisons.
pub const CDF_EPS: f64 = 1e-9;

/// Decides `x ⪯_st y` (allowing equality: a distribution dominates itself).
pub fn stochastically_dominates(x: &DistanceDistribution, y: &DistanceDistribution) -> bool {
    stochastically_dominates_counted(x, y, &mut 0)
}

/// As [`stochastically_dominates`], also counting the number of atom
/// comparisons performed — the cost metric of the Appendix C ablation.
pub fn stochastically_dominates_counted(
    x: &DistanceDistribution,
    y: &DistanceDistribution,
    comparisons: &mut u64,
) -> bool {
    let xs = x.atoms();
    let ys = y.atoms();
    let (mut i, mut j) = (0usize, 0usize);
    let mut gap = 0.0f64; // Pr(X ≤ λ) − Pr(Y ≤ λ) after processing values ≤ λ
    while j < ys.len() {
        *comparisons += 1;
        // Advance λ to the next distinct support value of either side;
        // consume all X atoms with value ≤ that λ first.
        let lambda = if i < xs.len() && xs[i].0 <= ys[j].0 {
            xs[i].0
        } else {
            ys[j].0
        };
        while i < xs.len() && xs[i].0 <= lambda {
            gap += xs[i].1;
            i += 1;
        }
        while j < ys.len() && ys[j].0 <= lambda {
            gap -= ys[j].1;
            j += 1;
        }
        if gap < -CDF_EPS {
            return false;
        }
    }
    // Remaining X atoms only increase the gap; no further checks needed.
    true
}

/// Strict variant used by the SD operators (Definitions 2/3): dominance in
/// stochastic order *and* the distributions differ.
pub fn strictly_dominates(x: &DistanceDistribution, y: &DistanceDistribution) -> bool {
    stochastically_dominates(x, y) && !x.approx_eq(y, CDF_EPS)
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn d(atoms: &[(f64, f64)]) -> DistanceDistribution {
        DistanceDistribution::from_atoms(atoms.to_vec())
    }

    #[test]
    fn identical_distributions_dominate_nonstrictly() {
        let x = d(&[(1.0, 0.5), (2.0, 0.5)]);
        assert!(stochastically_dominates(&x, &x));
        assert!(!strictly_dominates(&x, &x));
    }

    #[test]
    fn shifted_distribution_dominates() {
        let x = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let y = d(&[(2.0, 0.5), (3.0, 0.5)]);
        assert!(stochastically_dominates(&x, &y));
        assert!(!stochastically_dominates(&y, &x));
        assert!(strictly_dominates(&x, &y));
    }

    /// Figure 3(b): A_Q ⪯st B_Q, A_Q ⪯st C_Q, but B and C are incomparable.
    #[test]
    fn paper_figure3_orders() {
        // Distance distributions with pair probability 0.25 each; values
        // chosen to mirror the figure's sorted orderings.
        let a = d(&[(2.0, 0.25), (3.0, 0.25), (4.0, 0.25), (5.0, 0.25)]);
        let b = d(&[(3.0, 0.25), (4.0, 0.25), (5.0, 0.25), (6.0, 0.25)]);
        let c = d(&[(1.0, 0.25), (2.0, 0.25), (8.0, 0.25), (9.0, 0.25)]);
        assert!(stochastically_dominates(&a, &b));
        assert!(!stochastically_dominates(&b, &c));
        assert!(!stochastically_dominates(&c, &b));
    }

    #[test]
    fn crossing_cdfs_incomparable() {
        let x = d(&[(0.0, 0.5), (10.0, 0.5)]);
        let y = d(&[(4.0, 0.5), (6.0, 0.5)]);
        assert!(!stochastically_dominates(&x, &y));
        assert!(!stochastically_dominates(&y, &x));
    }

    #[test]
    fn dominance_with_unequal_supports() {
        let x = d(&[(1.0, 1.0)]);
        let y = d(&[(1.0, 0.2), (5.0, 0.3), (7.0, 0.5)]);
        assert!(stochastically_dominates(&x, &y));
        assert!(!stochastically_dominates(&y, &x));
    }

    #[test]
    fn ties_at_equal_values() {
        // Same support, Y has more mass high.
        let x = d(&[(1.0, 0.6), (2.0, 0.4)]);
        let y = d(&[(1.0, 0.4), (2.0, 0.6)]);
        assert!(stochastically_dominates(&x, &y));
        assert!(!stochastically_dominates(&y, &x));
    }

    #[test]
    fn comparison_counter_increments() {
        let x = d(&[(1.0, 0.5), (2.0, 0.5)]);
        let y = d(&[(2.0, 0.5), (3.0, 0.5)]);
        let mut c = 0;
        let _ = stochastically_dominates_counted(&x, &y, &mut c);
        assert!(c > 0);
    }

    /// Dominance must agree with the CDF definition on dense λ probes.
    #[test]
    fn agrees_with_cdf_definition() {
        let cases = [
            (d(&[(1.0, 0.3), (4.0, 0.7)]), d(&[(2.0, 0.5), (3.0, 0.5)])),
            (d(&[(1.0, 1.0)]), d(&[(0.5, 0.5), (9.0, 0.5)])),
            (d(&[(2.0, 0.5), (3.0, 0.5)]), d(&[(2.0, 0.5), (3.0, 0.5)])),
        ];
        for (x, y) in cases {
            let want = {
                let mut ok = true;
                let mut probes: Vec<f64> =
                    x.atoms().iter().chain(y.atoms()).map(|&(v, _)| v).collect();
                probes.sort_by(f64::total_cmp);
                for &l in &probes {
                    if x.cdf(l) < y.cdf(l) - 1e-12 {
                        ok = false;
                    }
                }
                ok
            };
            assert_eq!(stochastically_dominates(&x, &y), want);
        }
    }
}
