//! Flat columnar (SoA) instance storage with zero-copy views.
//!
//! The dominance kernels spend their time in tight loops over instance
//! pairs (§4–§6 of the paper). The boxed AoS layout
//! (`Vec<UncertainObject> → Vec<Instance> → Point(Box<[f64]>)`) scatters
//! those loops across the heap; an [`InstanceStore`] instead keeps every
//! instance of every object in one contiguous row-major `coords` block with
//! a parallel `probs` column and per-object `(offset, len)` spans.
//!
//! Invariants, maintained by construction and audited by
//! [`InstanceStore::validate`]:
//!
//! * `coords.len() == probs.len() * dim`;
//! * spans tile the instance range exactly: span `i+1` starts where span
//!   `i` ends, span `0` starts at `0`, and the last span ends at
//!   `probs.len()`; every span is non-empty;
//! * `mbrs[i]` is the tight MBR of object `i`'s rows;
//! * per object, probabilities are each in `(0, 1]` and sum to 1 (within
//!   the same `1e-6` tolerance as [`UncertainObject`]).
//!
//! [`ObjectRef`]/[`InstanceRef`] are cheap borrowed views (a pointer + an
//! id); cloning a view never clones coordinates. Readers share a snapshot
//! through `Arc<InstanceStore>`; the store is plain data (`Send + Sync`),
//! so worker threads borrow the same allocation with zero copies.

use crate::error::ObjectError;
use crate::object::{Instance, UncertainObject};
use osd_geom::{max_dist2_rows, min_dist2_rows, Mbr, Point};
use std::fmt;

/// Why an [`InstanceStore`] could not be built or extended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No objects were supplied.
    Empty,
    /// An object disagrees with the store's dimensionality.
    DimensionMismatch {
        /// Dimensionality of the store (set by the first object).
        expected: usize,
        /// Dimensionality of the offending object.
        found: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Empty => write!(f, "an instance store needs at least one object"),
            StoreError::DimensionMismatch { expected, found } => write!(
                f,
                "object dimensionality must match the store: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Columnar storage for the instances of a set of uncertain objects.
///
/// See the [module documentation](self) for the layout and its invariants.
#[derive(Debug, Clone)]
pub struct InstanceStore {
    dim: usize,
    /// Row-major instance coordinates, `dim`-strided.
    coords: Vec<f64>,
    /// Instance probabilities, parallel to the rows of `coords`.
    probs: Vec<f64>,
    /// Per-object `(first instance index, instance count)`.
    spans: Vec<(usize, usize)>,
    /// Per-object minimal bounding rectangles.
    mbrs: Vec<Mbr>,
}

impl InstanceStore {
    /// Builds a store from existing objects, copying each object's
    /// instances into the flat columns (coordinates, probabilities and the
    /// already-computed MBRs are taken verbatim, so derived geometry is
    /// bit-for-bit identical to the boxed layout).
    ///
    /// # Errors
    /// [`StoreError::Empty`] if `objects` is empty,
    /// [`StoreError::DimensionMismatch`] if the objects disagree on
    /// dimensionality.
    pub fn from_objects(objects: &[UncertainObject]) -> Result<Self, StoreError> {
        let first = objects.first().ok_or(StoreError::Empty)?;
        let dim = first.dim();
        let total: usize = objects.iter().map(UncertainObject::len).sum();
        let mut store = InstanceStore {
            dim,
            coords: Vec::with_capacity(total * dim),
            probs: Vec::with_capacity(total),
            spans: Vec::with_capacity(objects.len()),
            mbrs: Vec::with_capacity(objects.len()),
        };
        for o in objects {
            store.push_object(o)?;
        }
        Ok(store)
    }

    /// Appends one object's instances to the columns, returning its id.
    ///
    /// # Errors
    /// [`StoreError::DimensionMismatch`] if the object's dimensionality
    /// differs from the store's.
    pub fn push_object(&mut self, object: &UncertainObject) -> Result<usize, StoreError> {
        if object.dim() != self.dim {
            return Err(StoreError::DimensionMismatch {
                expected: self.dim,
                found: object.dim(),
            });
        }
        let id = self.spans.len();
        let offset = self.probs.len();
        for inst in object.instances() {
            self.coords.extend_from_slice(inst.point.coords());
            self.probs.push(inst.prob);
        }
        self.spans.push((offset, object.len()));
        self.mbrs.push(object.mbr().clone());
        Ok(id)
    }

    /// Removes the object at `row`, splicing its instances out of the
    /// columns and shifting every later span left so the spans keep tiling
    /// the instance range. Rows after `row` each move down by one; the
    /// surviving rows' coordinate and probability bits are untouched.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn remove_object(&mut self, row: usize) {
        assert!(row < self.spans.len(), "object row out of bounds");
        let (offset, len) = self.spans[row];
        self.coords
            .drain(offset * self.dim..(offset + len) * self.dim);
        self.probs.drain(offset..offset + len);
        self.spans.remove(row);
        self.mbrs.remove(row);
        for s in &mut self.spans[row..] {
            s.0 -= len;
        }
    }

    /// Replaces the object at `row` in place: its instance rows are spliced
    /// out and the new object's rows spliced in, with later span offsets
    /// adjusted by the length difference. Other rows' bits are untouched.
    ///
    /// # Errors
    /// [`StoreError::DimensionMismatch`] if the object's dimensionality
    /// differs from the store's (the store is left unchanged).
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn replace_object(
        &mut self,
        row: usize,
        object: &UncertainObject,
    ) -> Result<(), StoreError> {
        assert!(row < self.spans.len(), "object row out of bounds");
        if object.dim() != self.dim {
            return Err(StoreError::DimensionMismatch {
                expected: self.dim,
                found: object.dim(),
            });
        }
        let (offset, old_len) = self.spans[row];
        let new_len = object.len();
        let mut new_coords = Vec::with_capacity(new_len * self.dim);
        let mut new_probs = Vec::with_capacity(new_len);
        for inst in object.instances() {
            new_coords.extend_from_slice(inst.point.coords());
            new_probs.push(inst.prob);
        }
        self.coords
            .splice(offset * self.dim..(offset + old_len) * self.dim, new_coords);
        self.probs.splice(offset..offset + old_len, new_probs);
        self.spans[row] = (offset, new_len);
        self.mbrs[row] = object.mbr().clone();
        for s in &mut self.spans[row + 1..] {
            s.0 = s.0 - old_len + new_len;
        }
        Ok(())
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` iff the store holds no objects (only possible before the
    /// first successful `push_object`; `from_objects` rejects empty input).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Dimensionality of the instance space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of instances across all objects.
    #[inline]
    pub fn instance_count(&self) -> usize {
        self.probs.len()
    }

    /// The whole row-major coordinate block.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The whole probability column.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// A borrowed view of object `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn object(&self, id: usize) -> ObjectRef<'_> {
        assert!(id < self.spans.len(), "object id out of bounds");
        ObjectRef { store: self, id }
    }

    /// Iterates over all object views in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ObjectRef<'_>> {
        (0..self.len()).map(move |id| self.object(id))
    }

    /// Materialises the store back into boxed objects (interop with APIs
    /// that consume [`UncertainObject`]s).
    pub fn to_objects(&self) -> Vec<UncertainObject> {
        self.iter().map(|o| o.to_object()).collect()
    }

    /// Rebuilds the store with its objects rearranged into `order`: the
    /// object at `order[k]` of `self` becomes object `k` of the result.
    /// Columns are copied once into the new object order; coordinate and
    /// probability bits, spans and MBRs are taken verbatim, so every
    /// per-object derived quantity is bit-for-bit unchanged.
    ///
    /// This is the layout step of the sharded index: a Sort-Tile-Recursive
    /// object ordering turns each spatial shard into one *contiguous*
    /// sub-span of the columns (see [`InstanceStore::span`]).
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..self.len()`.
    pub fn permuted(&self, order: &[usize]) -> InstanceStore {
        assert_eq!(order.len(), self.len(), "order must cover every object");
        let mut seen = vec![false; self.len()];
        let mut out = InstanceStore {
            dim: self.dim,
            coords: Vec::with_capacity(self.coords.len()),
            probs: Vec::with_capacity(self.probs.len()),
            spans: Vec::with_capacity(self.spans.len()),
            mbrs: Vec::with_capacity(self.mbrs.len()),
        };
        for &id in order {
            assert!(!seen[id], "order repeats object {id}");
            seen[id] = true;
            let view = self.object(id);
            let offset = out.probs.len();
            out.coords.extend_from_slice(view.coords());
            out.probs.extend_from_slice(view.probs());
            out.spans.push((offset, view.len()));
            out.mbrs.push(view.mbr().clone());
        }
        out
    }

    /// A borrowed view of the contiguous object range `lo..hi` — the
    /// per-shard window of a space-partitioned store.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > self.len()`.
    pub fn span(&self, lo: usize, hi: usize) -> StoreSpan<'_> {
        assert!(
            lo <= hi && hi <= self.len(),
            "span {lo}..{hi} out of bounds"
        );
        StoreSpan {
            store: self,
            lo,
            hi,
        }
    }

    /// Approximate resident size of the columns and per-object metadata, in
    /// bytes (allocation headers and capacity slack excluded).
    pub fn approx_bytes(&self) -> usize {
        approx_bytes_for(self.dim, self.probs.len(), self.spans.len())
    }

    /// Audits the span/column invariants listed in the
    /// [module documentation](self). Returns the first violation as text.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.coords.len() != self.probs.len() * self.dim {
            return Err(format!(
                "coords length {} is not probs length {} times dim {}",
                self.coords.len(),
                self.probs.len(),
                self.dim
            ));
        }
        if self.spans.len() != self.mbrs.len() {
            return Err(format!(
                "{} spans but {} MBRs",
                self.spans.len(),
                self.mbrs.len()
            ));
        }
        let mut expected_offset = 0usize;
        for (id, &(offset, len)) in self.spans.iter().enumerate() {
            if len == 0 {
                return Err(format!("object {id} has an empty span"));
            }
            if offset != expected_offset {
                return Err(format!(
                    "object {id} span starts at {offset}, expected {expected_offset}"
                ));
            }
            expected_offset = offset + len;
            let view = self.object(id);
            let tight = Mbr::from_rows(view.coords(), self.dim);
            if tight != self.mbrs[id] {
                return Err(format!("object {id} MBR is not the tight row bound"));
            }
            let mut mass = 0.0;
            for i in 0..len {
                let p = view.prob(i);
                if !(p > 0.0 && p <= 1.0 && p.is_finite()) {
                    return Err(format!("object {id} instance {i} probability {p} invalid"));
                }
                mass += p;
            }
            if (mass - 1.0).abs() > 1e-6 {
                return Err(format!("object {id} probability mass {mass} != 1"));
            }
        }
        if expected_offset != self.probs.len() {
            return Err(format!(
                "spans cover {expected_offset} instances, store holds {}",
                self.probs.len()
            ));
        }
        Ok(())
    }
}

/// Shared byte-accounting for stores and spans: coordinate block +
/// probability column + `(offset, len)` spans + MBR lo/hi arrays.
fn approx_bytes_for(dim: usize, instances: usize, objects: usize) -> usize {
    let f = std::mem::size_of::<f64>();
    let u = std::mem::size_of::<usize>();
    instances * dim * f          // coords
        + instances * f          // probs
        + objects * 2 * u        // spans
        + objects * (2 * dim * f + std::mem::size_of::<Mbr>()) // mbr payloads + headers
}

/// A borrowed view of a contiguous object range of an [`InstanceStore`] —
/// the sub-span a spatial shard owns. All accessors are zero-copy slices
/// into the parent columns.
#[derive(Clone, Copy, Debug)]
pub struct StoreSpan<'a> {
    store: &'a InstanceStore,
    lo: usize,
    hi: usize,
}

impl<'a> StoreSpan<'a> {
    /// Number of objects in the span.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// `true` iff the span covers no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// The span's object range in the parent store, as `(lo, hi)`.
    #[inline]
    pub fn bounds(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Total instances across the span's objects.
    #[inline]
    pub fn instance_count(&self) -> usize {
        self.instance_range().len()
    }

    /// The span's rows of the parent coordinate block (row-major,
    /// `dim`-strided) — one contiguous slice, because spans tile the
    /// instance range in object order.
    #[inline]
    pub fn coords(&self) -> &'a [f64] {
        let r = self.instance_range();
        &self.store.coords[r.start * self.store.dim..r.end * self.store.dim]
    }

    /// The span's rows of the parent probability column.
    #[inline]
    pub fn probs(&self) -> &'a [f64] {
        let r = self.instance_range();
        &self.store.probs[r]
    }

    /// Iterates over the span's object views, in parent-store id order.
    pub fn objects(&self) -> impl ExactSizeIterator<Item = ObjectRef<'a>> + '_ {
        let store = self.store;
        (self.lo..self.hi).map(move |id| store.object(id))
    }

    /// Approximate resident bytes attributable to this span's share of the
    /// columns and metadata (same accounting as
    /// [`InstanceStore::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        approx_bytes_for(self.store.dim, self.instance_count(), self.len())
    }

    fn instance_range(&self) -> std::ops::Range<usize> {
        if self.lo == self.hi {
            return 0..0;
        }
        let (first, _) = self.store.spans[self.lo];
        let (off, len) = self.store.spans[self.hi - 1];
        first..off + len
    }
}

/// A cheap borrowed view of one object inside an [`InstanceStore`].
#[derive(Clone, Copy, Debug)]
pub struct ObjectRef<'a> {
    store: &'a InstanceStore,
    id: usize,
}

impl<'a> ObjectRef<'a> {
    /// The object's id inside the store.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of instances (`|U|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.store.spans[self.id].1
    }

    /// Never true — spans are non-empty by construction — but provided for
    /// API completeness alongside `len`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` iff the object has exactly one instance (a certain point).
    #[inline]
    pub fn is_certain(&self) -> bool {
        self.len() == 1
    }

    /// Dimensionality of the instance space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.store.dim
    }

    /// All of this object's coordinate rows as one flat row-major slice.
    #[inline]
    pub fn coords(&self) -> &'a [f64] {
        let (offset, len) = self.store.spans[self.id];
        let d = self.store.dim;
        &self.store.coords[offset * d..(offset + len) * d]
    }

    /// This object's probability column.
    #[inline]
    pub fn probs(&self) -> &'a [f64] {
        let (offset, len) = self.store.spans[self.id];
        &self.store.probs[offset..offset + len]
    }

    /// The coordinate row of instance `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        let (offset, len) = self.store.spans[self.id];
        debug_assert!(i < len, "instance index out of bounds");
        let d = self.store.dim;
        let start = (offset + i) * d;
        &self.store.coords[start..start + d]
    }

    /// The probability of instance `i`.
    #[inline]
    pub fn prob(&self, i: usize) -> f64 {
        let (offset, len) = self.store.spans[self.id];
        debug_assert!(i < len, "instance index out of bounds");
        self.store.probs[offset + i]
    }

    /// The view of instance `i`.
    #[inline]
    pub fn instance(&self, i: usize) -> InstanceRef<'a> {
        InstanceRef {
            row: self.row(i),
            prob: self.prob(i),
        }
    }

    /// Iterates over the instance views in order.
    pub fn instances(&self) -> impl ExactSizeIterator<Item = InstanceRef<'a>> + '_ {
        (0..self.len()).map(move |i| self.instance(i))
    }

    /// The object's minimal bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> &'a Mbr {
        &self.store.mbrs[self.id]
    }

    /// Approximate bytes of columnar data held for this object (same model
    /// as [`InstanceStore::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        approx_bytes_for(self.store.dim, self.len(), 1)
    }

    /// Minimal distance from a point to any instance: `δ_min(q, U)`.
    ///
    /// Runs the blocked [`min_dist2_rows`] kernel over the contiguous rows
    /// and square-roots the folded minimum — bit-identical to the
    /// row-by-row `dist_slice` fold it replaces, because `√` is monotone
    /// and squared distances are never `-0.0`.
    pub fn min_dist(&self, q: &Point) -> f64 {
        min_dist2_rows(self.coords(), self.dim(), q.coords()).sqrt()
    }

    /// Maximal distance from a point to any instance: `δ_max(q, U)`.
    ///
    /// Blocked like [`ObjectRef::min_dist`]; `√(max δ²)` equals the scalar
    /// `fold(0.0, f64::max)` over `δ` bit-for-bit by the same monotonicity
    /// argument.
    pub fn max_dist(&self, q: &Point) -> f64 {
        max_dist2_rows(self.coords(), self.dim(), q.coords()).sqrt()
    }

    /// Materialises the view back into a boxed [`UncertainObject`].
    ///
    /// # Panics
    /// Panics if the store data violates the object invariants (impossible
    /// for stores built through the public constructors).
    pub fn to_object(&self) -> UncertainObject {
        match self.try_to_object() {
            Ok(o) => o,
            Err(e) => unreachable_invalid(e),
        }
    }

    /// Fallible variant of [`ObjectRef::to_object`].
    ///
    /// # Errors
    /// Returns an [`ObjectError`] if the stored data violates the object
    /// invariants.
    pub fn try_to_object(&self) -> Result<UncertainObject, ObjectError> {
        UncertainObject::try_new(
            self.instances()
                .map(|u| (Point::new(u.row.to_vec()), u.prob))
                .collect(),
        )
    }
}

/// Aborts a conversion whose source store is corrupt. Stores built through
/// the public constructors copy data out of validated `UncertainObject`s,
/// so this is unreachable in practice; the panic waiver mirrors the one on
/// the panicking `UncertainObject` constructors.
#[cold]
#[allow(clippy::panic)]
fn unreachable_invalid(e: ObjectError) -> ! {
    panic!("{e}")
}

/// A borrowed view of a single instance: its coordinate row and mass.
#[derive(Clone, Copy, Debug)]
pub struct InstanceRef<'a> {
    /// The instance's coordinate row.
    pub row: &'a [f64],
    /// The instance's probability mass.
    pub prob: f64,
}

impl InstanceRef<'_> {
    /// Materialises the view into a boxed [`Instance`].
    pub fn to_instance(&self) -> Instance {
        Instance {
            point: Point::new(self.row.to_vec()),
            prob: self.prob,
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn sample_objects() -> Vec<UncertainObject> {
        vec![
            UncertainObject::new(vec![(p2(0.0, 0.0), 0.4), (p2(2.0, 4.0), 0.6)]),
            UncertainObject::uniform(vec![p2(5.0, 5.0), p2(6.0, 5.0), p2(5.5, 7.0)]),
            UncertainObject::uniform(vec![p2(-1.0, 3.0)]),
        ]
    }

    #[test]
    fn round_trips_objects_exactly() {
        let objects = sample_objects();
        let store = InstanceStore::from_objects(&objects).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.instance_count(), 6);
        store.validate().unwrap();
        for (id, o) in objects.iter().enumerate() {
            let view = store.object(id);
            assert_eq!(view.len(), o.len());
            assert_eq!(view.mbr(), o.mbr());
            for (i, inst) in o.instances().iter().enumerate() {
                assert_eq!(view.row(i), inst.point.coords());
                assert_eq!(view.prob(i).to_bits(), inst.prob.to_bits());
            }
            let back = view.to_object();
            assert_eq!(back.len(), o.len());
            assert_eq!(back.mbr(), o.mbr());
        }
    }

    #[test]
    fn views_are_zero_copy_slices_into_the_columns() {
        let store = InstanceStore::from_objects(&sample_objects()).unwrap();
        let view = store.object(1);
        let flat = view.coords();
        assert_eq!(flat.len(), 3 * 2);
        // The object slice is a sub-slice of the store's single allocation.
        let base = store.coords().as_ptr() as usize;
        let sub = flat.as_ptr() as usize;
        assert_eq!((sub - base) / std::mem::size_of::<f64>(), 2 * 2);
        assert_eq!(view.row(2), &flat[4..6]);
    }

    #[test]
    fn min_max_dist_match_boxed_objects() {
        let objects = sample_objects();
        let store = InstanceStore::from_objects(&objects).unwrap();
        let q = p2(1.0, 1.0);
        for (id, o) in objects.iter().enumerate() {
            let view = store.object(id);
            assert_eq!(view.min_dist(&q).to_bits(), o.min_dist(&q).to_bits());
            assert_eq!(view.max_dist(&q).to_bits(), o.max_dist(&q).to_bits());
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            InstanceStore::from_objects(&[]).unwrap_err(),
            StoreError::Empty
        );
    }

    #[test]
    fn mixed_dimensionality_rejected() {
        let objects = vec![
            UncertainObject::uniform(vec![p2(0.0, 0.0)]),
            UncertainObject::uniform(vec![Point::new(vec![1.0])]),
        ];
        let err = InstanceStore::from_objects(&objects).unwrap_err();
        assert_eq!(
            err,
            StoreError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
        assert!(format!("{err}").contains("dimensionality must match"));
    }

    #[test]
    fn push_extends_spans_contiguously() {
        let mut store = InstanceStore::from_objects(&sample_objects()).unwrap();
        let id = store
            .push_object(&UncertainObject::uniform(vec![p2(9.0, 9.0), p2(10.0, 9.0)]))
            .unwrap();
        assert_eq!(id, 3);
        assert_eq!(store.len(), 4);
        assert_eq!(store.instance_count(), 8);
        store.validate().unwrap();
        assert_eq!(store.object(3).row(1), &[10.0, 9.0]);
    }

    #[test]
    fn remove_object_splices_columns_and_revalidates() {
        let objects = sample_objects();
        let mut store = InstanceStore::from_objects(&objects).unwrap();
        store.remove_object(1);
        store.validate().unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.instance_count(), 3);
        // Survivors keep their bits: old object 0 stays row 0, old 2 → row 1.
        for (row, old) in [(0usize, 0usize), (1, 2)] {
            let view = store.object(row);
            let orig = &objects[old];
            assert_eq!(view.len(), orig.len());
            assert_eq!(view.mbr(), orig.mbr());
            for (i, inst) in orig.instances().iter().enumerate() {
                assert_eq!(view.row(i), inst.point.coords());
                assert_eq!(view.prob(i).to_bits(), inst.prob.to_bits());
            }
        }
        // Removing down to one object keeps the store valid.
        store.remove_object(0);
        store.validate().unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.object(0).row(0), &[-1.0, 3.0]);
    }

    #[test]
    fn replace_object_respliced_with_different_len() {
        let objects = sample_objects();
        let mut store = InstanceStore::from_objects(&objects).unwrap();
        // Replace the 3-instance middle object with a single instance.
        let shrunk = UncertainObject::uniform(vec![p2(8.0, 8.0)]);
        store.replace_object(1, &shrunk).unwrap();
        store.validate().unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.instance_count(), 4);
        assert_eq!(store.object(1).row(0), &[8.0, 8.0]);
        assert_eq!(store.object(2).row(0), &[-1.0, 3.0]);
        // Grow it back to two instances.
        let grown = UncertainObject::uniform(vec![p2(1.0, 1.0), p2(2.0, 2.0)]);
        store.replace_object(1, &grown).unwrap();
        store.validate().unwrap();
        assert_eq!(store.instance_count(), 5);
        assert_eq!(store.object(1).row(1), &[2.0, 2.0]);
        assert_eq!(store.object(2).row(0), &[-1.0, 3.0]);
        // Dimension mismatches leave the store untouched.
        let bad = UncertainObject::uniform(vec![Point::new(vec![1.0])]);
        assert!(store.replace_object(1, &bad).is_err());
        store.validate().unwrap();
        assert_eq!(store.object(1).row(1), &[2.0, 2.0]);
    }

    #[test]
    fn permuted_store_is_bitwise_identical_per_object() {
        let store = InstanceStore::from_objects(&sample_objects()).unwrap();
        let order = [2usize, 0, 1];
        let perm = store.permuted(&order);
        perm.validate().unwrap();
        assert_eq!(perm.len(), store.len());
        assert_eq!(perm.instance_count(), store.instance_count());
        for (new_id, &old_id) in order.iter().enumerate() {
            let a = perm.object(new_id);
            let b = store.object(old_id);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.mbr(), b.mbr());
            for i in 0..a.len() {
                assert_eq!(a.row(i), b.row(i));
                assert_eq!(a.prob(i).to_bits(), b.prob(i).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "order repeats object")]
    fn permuted_rejects_non_permutations() {
        let store = InstanceStore::from_objects(&sample_objects()).unwrap();
        let _ = store.permuted(&[0, 0, 1]);
    }

    #[test]
    fn spans_are_zero_copy_windows() {
        let store = InstanceStore::from_objects(&sample_objects()).unwrap();
        let span = store.span(1, 3);
        assert_eq!(span.len(), 2);
        assert_eq!(span.bounds(), (1, 3));
        assert_eq!(span.instance_count(), 4); // objects 1 (3 inst) + 2 (1 inst)
                                              // Coordinate window is a sub-slice of the parent allocation.
        let base = store.coords().as_ptr() as usize;
        let sub = span.coords().as_ptr() as usize;
        assert_eq!((sub - base) / std::mem::size_of::<f64>(), 2 * 2);
        assert_eq!(span.coords().len(), 4 * 2);
        assert_eq!(span.probs().len(), 4);
        let ids: Vec<usize> = span.objects().map(|o| o.len()).collect();
        assert_eq!(ids, vec![3, 1]);
        // Degenerate spans and whole-store spans behave.
        assert!(store.span(2, 2).is_empty());
        assert_eq!(store.span(2, 2).instance_count(), 0);
        let whole = store.span(0, store.len());
        assert_eq!(whole.instance_count(), store.instance_count());
        assert_eq!(whole.coords().len(), store.coords().len());
        assert!(whole.approx_bytes() <= store.approx_bytes());
        assert!(span.approx_bytes() < whole.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn span_bounds_are_checked() {
        let store = InstanceStore::from_objects(&sample_objects()).unwrap();
        let _ = store.span(1, 4);
    }

    #[test]
    fn to_objects_round_trip_preserves_pairwise_distances() {
        let objects = sample_objects();
        let store = InstanceStore::from_objects(&objects).unwrap();
        let back = store.to_objects();
        for (a, b) in objects.iter().zip(back.iter()) {
            for (ia, ib) in a.instances().iter().zip(b.instances().iter()) {
                assert_eq!(ia.point, ib.point);
                assert_eq!(ia.prob.to_bits(), ib.prob.to_bits());
            }
        }
    }
}
