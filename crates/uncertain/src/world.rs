//! Possible-world enumeration (§3.3) — a small exact oracle.
//!
//! A possible world picks one instance from each object (and the query);
//! its probability is the product of the picked instances' probabilities.
//! Enumeration is exponential, so this module is used as a *test oracle*
//! and for the exact N2 functions on small inputs; the polynomial
//! computations live in `osd-nnfuncs`.

use crate::object::UncertainObject;

/// Hard cap on the number of worlds the enumerator will visit, as a guard
/// against accidental exponential blow-ups in tests.
pub const MAX_WORLDS: u128 = 20_000_000;

/// Enumerates every possible world over `objects`, invoking `visit` with the
/// chosen instance index per object and the world's probability.
///
/// # Panics
/// Panics if the total number of worlds exceeds [`MAX_WORLDS`].
pub fn for_each_world(objects: &[&UncertainObject], mut visit: impl FnMut(&[usize], f64)) {
    let total: u128 = objects.iter().map(|o| o.len() as u128).product();
    assert!(
        total <= MAX_WORLDS,
        "possible-world enumeration would visit {total} worlds (cap {MAX_WORLDS})"
    );
    let mut choice = vec![0usize; objects.len()];
    loop {
        let prob: f64 = objects
            .iter()
            .zip(choice.iter())
            .map(|(o, &i)| o.instances()[i].prob)
            .product();
        visit(&choice, prob);
        // Mixed-radix increment.
        let mut k = 0;
        loop {
            if k == objects.len() {
                return;
            }
            choice[k] += 1;
            if choice[k] < objects[k].len() {
                break;
            }
            choice[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn obj(points: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(
            points
                .iter()
                .map(|&(x, y)| Point::new(vec![x, y]))
                .collect(),
        )
    }

    #[test]
    fn world_count_and_mass() {
        let a = obj(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = obj(&[(2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let mut count = 0usize;
        let mut mass = 0.0;
        for_each_world(&[&a, &b], |choice, p| {
            assert_eq!(choice.len(), 2);
            count += 1;
            mass += p;
        });
        assert_eq!(count, 6);
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_object_single_instance() {
        let a = obj(&[(0.0, 0.0)]);
        let mut worlds = Vec::new();
        for_each_world(&[&a], |c, p| worlds.push((c.to_vec(), p)));
        assert_eq!(worlds, vec![(vec![0], 1.0)]);
    }

    #[test]
    fn probabilities_multiply() {
        let a = UncertainObject::new(vec![
            (Point::new(vec![0.0]), 0.3),
            (Point::new(vec![1.0]), 0.7),
        ]);
        let b = UncertainObject::new(vec![
            (Point::new(vec![2.0]), 0.4),
            (Point::new(vec![3.0]), 0.6),
        ]);
        let mut seen = std::collections::HashMap::new();
        for_each_world(&[&a, &b], |c, p| {
            seen.insert((c[0], c[1]), p);
        });
        assert!((seen[&(0, 0)] - 0.12).abs() < 1e-12);
        assert!((seen[&(1, 1)] - 0.42).abs() < 1e-12);
    }
}
