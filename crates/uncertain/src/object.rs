//! Objects with multiple instances (discrete uncertain objects).
//!
//! Following §2.1 of the paper, an object `U` is a set of instances
//! `{u_1, …, u_m}` with a probability mass function `p(u_i)`,
//! `Σ p(u_i) = 1`. Multi-valued objects (instances carrying weights) are
//! normalised into this representation — the paper shows the transformation
//! preserves NN ranks for all functions studied when total weight masses are
//! equal, so it is safe for dominance checking.

use crate::error::ObjectError;
use osd_geom::{Mbr, Point};

/// One instance of an object: a point plus its probability mass.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Location of the instance.
    pub point: Point,
    /// Probability (or normalised weight) of the instance, in `(0, 1]`.
    pub prob: f64,
}

/// An object with multiple instances, modelled as a discrete random
/// variable over points (§2.1).
#[derive(Debug, Clone)]
pub struct UncertainObject {
    instances: Vec<Instance>,
    mbr: Mbr,
}

/// Tolerance for "probabilities sum to one".
const PROB_SUM_EPS: f64 = 1e-6;

impl UncertainObject {
    /// Creates an object from `(point, probability)` pairs.
    ///
    /// # Panics
    /// Panics if the list is empty, dimensions are inconsistent, any
    /// probability is not in `(0, 1]`, or the probabilities do not sum to 1
    /// (within `1e-6`). Use [`UncertainObject::try_new`] for untrusted data.
    pub fn new(instances: Vec<(Point, f64)>) -> Self {
        match Self::try_new(instances) {
            Ok(o) => o,
            Err(e) => Self::invalid(e),
        }
    }

    /// Aborts a panicking constructor with the invariant violation `e`.
    ///
    /// The panicking constructors are the documented ergonomic path for
    /// trusted, programmatic data; the `try_*` variants are the fallible
    /// path. This is the single place the crate's `clippy::panic` policy is
    /// waived to honour that contract.
    #[cold]
    #[allow(clippy::panic)]
    fn invalid(e: ObjectError) -> ! {
        panic!("{e}")
    }

    /// Fallible variant of [`UncertainObject::new`] for untrusted input.
    ///
    /// # Errors
    /// Returns an [`ObjectError`] describing the first violated invariant.
    pub fn try_new(instances: Vec<(Point, f64)>) -> Result<Self, ObjectError> {
        if instances.is_empty() {
            return Err(ObjectError::Empty);
        }
        let dim = instances[0].0.dim();
        let mut sum = 0.0;
        for (p, pr) in &instances {
            if p.dim() != dim {
                return Err(ObjectError::DimensionMismatch {
                    expected: dim,
                    found: p.dim(),
                });
            }
            if !(*pr > 0.0 && *pr <= 1.0 && pr.is_finite()) {
                return Err(ObjectError::BadProbability(*pr));
            }
            sum += pr;
        }
        if (sum - 1.0).abs() > PROB_SUM_EPS {
            return Err(ObjectError::BadMass(sum));
        }
        let points: Vec<Point> = instances.iter().map(|(p, _)| p.clone()).collect();
        let mbr = Mbr::from_points(&points);
        let instances = instances
            .into_iter()
            .map(|(point, prob)| Instance { point, prob })
            .collect();
        Ok(UncertainObject { instances, mbr })
    }

    /// Creates an object whose instances all carry the same probability
    /// `1 / n` — the setting used for the real datasets in §6.
    pub fn uniform(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "an object needs at least one instance");
        let p = 1.0 / points.len() as f64;
        // Feed probabilities through `new` minus the sum check (1/n * n can
        // drift); normalise the last instance to absorb rounding instead.
        let n = points.len();
        let mut pairs: Vec<(Point, f64)> = points.into_iter().map(|pt| (pt, p)).collect();
        let used: f64 = p * (n - 1) as f64;
        pairs[n - 1].1 = 1.0 - used;
        UncertainObject::new(pairs)
    }

    /// Creates an object from weighted instances of a *multi-valued object*,
    /// normalising the weights to probabilities: `p(u_i) = w(u_i) / Σ_j w(u_j)`.
    ///
    /// # Panics
    /// Panics if the list is empty or any weight is non-positive. Use
    /// [`UncertainObject::try_from_weighted`] for untrusted data.
    pub fn from_weighted(instances: Vec<(Point, f64)>) -> Self {
        match Self::try_from_weighted(instances) {
            Ok(o) => o,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`UncertainObject::from_weighted`].
    ///
    /// # Errors
    /// Returns an [`ObjectError`] describing the first violated invariant.
    pub fn try_from_weighted(instances: Vec<(Point, f64)>) -> Result<Self, ObjectError> {
        if instances.is_empty() {
            return Err(ObjectError::Empty);
        }
        let total: f64 = instances.iter().map(|(_, w)| *w).sum();
        if !(total > 0.0 && total.is_finite()) {
            return Err(ObjectError::BadWeight(total));
        }
        for (_, w) in &instances {
            if *w <= 0.0 || !w.is_finite() {
                return Err(ObjectError::BadWeight(*w));
            }
        }
        Self::try_new(instances.into_iter().map(|(p, w)| (p, w / total)).collect())
    }

    /// Number of instances (`|U|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` iff the object has exactly one instance (a certain point).
    pub fn is_certain(&self) -> bool {
        self.instances.len() == 1
    }

    /// Never true — objects are non-empty by construction — but provided for
    /// API completeness alongside `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The instances.
    #[inline]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Dimensionality of the instance space.
    pub fn dim(&self) -> usize {
        self.instances[0].point.dim()
    }

    /// The object's minimal bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// Minimal distance from a point to any instance: `δ_min(q, U)`.
    pub fn min_dist(&self, q: &Point) -> f64 {
        self.instances
            .iter()
            .map(|i| i.point.dist(q))
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximal distance from a point to any instance: `δ_max(q, U)`.
    pub fn max_dist(&self, q: &Point) -> f64 {
        self.instances
            .iter()
            .map(|i| i.point.dist(q))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    #[test]
    fn construction_and_mbr() {
        let o = UncertainObject::new(vec![(p2(0.0, 0.0), 0.4), (p2(2.0, 4.0), 0.6)]);
        assert_eq!(o.len(), 2);
        assert_eq!(o.mbr().lo(), &[0.0, 0.0]);
        assert_eq!(o.mbr().hi(), &[2.0, 4.0]);
        assert_eq!(o.dim(), 2);
        assert!(!o.is_certain());
    }

    #[test]
    fn uniform_sums_to_one() {
        let pts: Vec<Point> = (0..7).map(|i| p2(i as f64, 0.0)).collect();
        let o = UncertainObject::uniform(pts);
        let sum: f64 = o.instances().iter().map(|i| i.prob).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_normalisation() {
        let o = UncertainObject::from_weighted(vec![(p2(0.0, 0.0), 2.0), (p2(1.0, 1.0), 6.0)]);
        assert!((o.instances()[0].prob - 0.25).abs() < 1e-12);
        assert!((o.instances()[1].prob - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_max_dist() {
        let o = UncertainObject::uniform(vec![p2(1.0, 0.0), p2(5.0, 0.0)]);
        let q = p2(0.0, 0.0);
        assert_eq!(o.min_dist(&q), 1.0);
        assert_eq!(o.max_dist(&q), 5.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probability_sum_rejected() {
        let _ = UncertainObject::new(vec![(p2(0.0, 0.0), 0.4), (p2(1.0, 1.0), 0.4)]);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_rejected() {
        let _ = UncertainObject::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mixed_dims_rejected() {
        let _ = UncertainObject::new(vec![(Point::new(vec![0.0]), 0.5), (p2(1.0, 1.0), 0.5)]);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        use crate::error::ObjectError;
        assert!(matches!(
            UncertainObject::try_new(vec![]),
            Err(ObjectError::Empty)
        ));
        let r = UncertainObject::try_new(vec![(Point::new(vec![0.0]), 0.5), (p2(1.0, 1.0), 0.5)]);
        assert!(matches!(
            r,
            Err(ObjectError::DimensionMismatch {
                expected: 1,
                found: 2
            })
        ));
        let r = UncertainObject::try_new(vec![(p2(0.0, 0.0), 1.5)]);
        assert!(matches!(r, Err(ObjectError::BadProbability(_))));
        let r = UncertainObject::try_new(vec![(p2(0.0, 0.0), 0.4)]);
        assert!(matches!(r, Err(ObjectError::BadMass(_))));
        assert!(UncertainObject::try_new(vec![(p2(0.0, 0.0), 1.0)]).is_ok());
    }

    #[test]
    fn try_from_weighted_reports_bad_weight() {
        use crate::error::ObjectError;
        let r = UncertainObject::try_from_weighted(vec![(p2(0.0, 0.0), -1.0), (p2(1.0, 1.0), 2.0)]);
        assert!(matches!(r, Err(ObjectError::BadWeight(_))));
        assert!(UncertainObject::try_from_weighted(vec![(p2(0.0, 0.0), 3.0)]).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let msg = format!("{}", crate::error::ObjectError::BadMass(0.7));
        assert!(msg.contains("sum to 1"));
        assert!(msg.contains("0.7"));
    }
}
