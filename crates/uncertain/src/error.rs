//! Error types for fallible object construction.
//!
//! The panicking constructors (`new`, `uniform`, `from_weighted`) stay the
//! ergonomic default for programmatic data; the `try_*` variants return
//! these errors for data arriving from files or user input.

use std::fmt;

/// Why a multi-instance object (or distribution) could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectError {
    /// No instances were supplied.
    Empty,
    /// Instances disagree on dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first instance.
        expected: usize,
        /// Dimensionality of the offending instance.
        found: usize,
    },
    /// A probability was outside `(0, 1]` or non-finite.
    BadProbability(f64),
    /// A weight was non-positive or non-finite.
    BadWeight(f64),
    /// Probabilities do not sum to 1 (within tolerance).
    BadMass(f64),
    /// A coordinate was non-finite.
    BadCoordinate(f64),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::Empty => write!(f, "an object needs at least one instance"),
            ObjectError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "instance dimensionality mismatch: expected {expected}, found {found}"
                )
            }
            ObjectError::BadProbability(p) => {
                write!(f, "instance probability must be in (0, 1], got {p}")
            }
            ObjectError::BadWeight(w) => {
                write!(f, "instance weight must be positive and finite, got {w}")
            }
            ObjectError::BadMass(s) => {
                write!(f, "instance probabilities must sum to 1, got {s}")
            }
            ObjectError::BadCoordinate(c) => {
                write!(f, "instance coordinates must be finite, got {c}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}
