//! # osd-uncertain
//!
//! The multi-instance / discrete-uncertain object model of *Optimal Spatial
//! Dominance* (SIGMOD 2015):
//!
//! * [`UncertainObject`] — instances with probability masses (§2.1),
//!   including weight normalisation for multi-valued objects;
//! * [`DistanceDistribution`] — the discrete distributions `U_Q` and `U_q`
//!   with their statistics (min / max / mean / φ-quantile, Definition 10);
//! * [`stochastic`] — the usual stochastic order `⪯_st` (Definition 1)
//!   decided by an optimal single merged scan (§5.1.1, Theorem 10);
//! * [`matching`] — matches between discrete random variables
//!   (Definition 4), the match order (Definition 9) and the constructive
//!   equivalence with `⪯_st` (Theorem 1);
//! * [`world`] — possible-world enumeration (§3.3) for exact small-input
//!   oracles;
//! * [`quantize()`](quantize::quantize) — fixed-point probability quantisation feeding the exact
//!   integer max-flow of the P-SD check.
//!
//! ```
//! use osd_geom::Point;
//! use osd_uncertain::{
//!     stochastically_dominates, DistanceDistribution, UncertainObject,
//! };
//!
//! // A multi-valued object: weights normalise to probabilities.
//! let u = UncertainObject::from_weighted(vec![
//!     (Point::from([1.0, 0.0]), 3.0),
//!     (Point::from([2.0, 0.0]), 1.0),
//! ]);
//! assert!((u.instances()[0].prob - 0.75).abs() < 1e-12);
//!
//! // Distance distribution w.r.t. a query and its statistics.
//! let q = UncertainObject::uniform(vec![Point::from([0.0, 0.0])]);
//! let d = DistanceDistribution::between(&u, &q);
//! assert_eq!(d.min(), 1.0);
//! assert_eq!(d.max(), 2.0);
//! assert!((d.mean() - 1.25).abs() < 1e-12);
//!
//! // The usual stochastic order.
//! let v = UncertainObject::uniform(vec![Point::from([5.0, 0.0])]);
//! let dv = DistanceDistribution::between(&v, &q);
//! assert!(stochastically_dominates(&d, &dv));
//! ```

#![warn(missing_docs)]

pub mod distribution;
pub mod epoch;
pub mod error;
pub mod matching;
pub mod metric;
pub mod object;
pub mod quantize;
pub mod stochastic;
pub mod store;
pub mod world;

pub use distribution::DistanceDistribution;
pub use epoch::{touched_ids, Change, EpochLog, DEFAULT_LOG_CAP};
pub use error::ObjectError;
pub use matching::{construct_match, is_valid_match, match_dominates, MatchTuple};
pub use metric::{s_sd_metric, ss_sd_metric, Metric};
pub use object::{Instance, UncertainObject};
pub use quantize::{quantize, SCALE};
pub use stochastic::{
    stochastically_dominates, stochastically_dominates_counted, strictly_dominates, CDF_EPS,
};
pub use store::{InstanceRef, InstanceStore, ObjectRef, StoreError, StoreSpan};
pub use world::for_each_world;

// Compile-time auto-trait surface: uncertain objects and their distance
// distributions are shared read-only (and `Arc`-cached) across
// query-engine worker threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<UncertainObject>();
const _: () = _assert_send_sync::<Instance>();
const _: () = _assert_send_sync::<DistanceDistribution>();
const _: () = _assert_send_sync::<InstanceStore>();
const _: () = _assert_send_sync::<ObjectRef<'static>>();
const _: () = _assert_send_sync::<InstanceRef<'static>>();
const _: () = _assert_send_sync::<StoreError>();
const _: () = _assert_send_sync::<Change>();
const _: () = _assert_send_sync::<EpochLog>();
