//! Fixed-point quantisation of probability masses.
//!
//! The P-SD max-flow check (Theorem 12) asks whether the network carries a
//! flow of value exactly 1. Running Dinic on floating-point capacities would
//! make that test fragile, so probabilities are quantised to integers
//! summing to exactly [`SCALE`]; the flow test becomes exact integer
//! arithmetic. Rounding uses largest-remainder apportionment, so the
//! per-mass error is below `1 / SCALE ≈ 2.3e-10` — far beneath the
//! probability granularity of any realistic object.

/// Fixed-point denominator: quantised masses sum to exactly this value.
pub const SCALE: u64 = 1 << 32;

/// Quantises probabilities (summing to 1 within `1e-6`) into integers
/// summing to exactly [`SCALE`], using largest-remainder rounding.
///
/// Every positive input receives a positive output (a mass can lose at most
/// its fractional part, and inputs below one quantum are bumped to one by
/// the remainder distribution or a final correction).
///
/// # Panics
/// Panics if `probs` is empty, contains non-positive values, or does not sum
/// to 1 within `1e-6`.
pub fn quantize(probs: &[f64]) -> Vec<u64> {
    assert!(!probs.is_empty(), "cannot quantise an empty mass vector");
    let sum: f64 = probs.iter().sum();
    assert!(
        (sum - 1.0).abs() <= 1e-6,
        "probabilities must sum to 1, got {sum}"
    );
    assert!(probs.iter().all(|&p| p > 0.0), "masses must be positive");

    let mut out: Vec<u64> = Vec::with_capacity(probs.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(probs.len());
    let mut used: u64 = 0;
    for (i, &p) in probs.iter().enumerate() {
        let exact = p / sum * SCALE as f64;
        let floor = exact.floor() as u64;
        out.push(floor);
        used += floor;
        fracs.push((exact - floor as f64, i));
    }
    // Distribute the remaining quanta to the largest fractional parts.
    let mut remaining = SCALE - used;
    fracs.sort_by(|a, b| b.0.total_cmp(&a.0));
    for &(_, i) in fracs.iter().cycle().take(remaining as usize) {
        out[i] += 1;
        remaining -= 1;
        if remaining == 0 {
            break;
        }
    }
    // Guarantee positivity: steal a quantum from the largest entry for any
    // zero (can only happen for masses below 2^-32).
    for i in 0..out.len() {
        if out[i] == 0 {
            let max_idx = (0..out.len()).max_by_key(|&j| out[j]).unwrap_or(i);
            debug_assert!(out[max_idx] > 1);
            out[max_idx] -= 1;
            out[i] = 1;
        }
    }
    debug_assert_eq!(out.iter().sum::<u64>(), SCALE);
    out
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn exact_halves() {
        assert_eq!(quantize(&[0.5, 0.5]), vec![SCALE / 2, SCALE / 2]);
    }

    #[test]
    fn thirds_sum_exactly() {
        let q = quantize(&[1.0 / 3.0; 3]);
        assert_eq!(q.iter().sum::<u64>(), SCALE);
        for &v in &q {
            assert!((v as i64 - (SCALE / 3) as i64).unsigned_abs() <= 1);
        }
    }

    #[test]
    fn skewed_masses() {
        let q = quantize(&[0.9, 0.05, 0.05]);
        assert_eq!(q.iter().sum::<u64>(), SCALE);
        assert!(q[0] > q[1]);
    }

    #[test]
    fn tiny_mass_stays_positive() {
        let eps = 1e-12;
        let q = quantize(&[1.0 - eps, eps]);
        assert_eq!(q.iter().sum::<u64>(), SCALE);
        assert!(q[1] >= 1);
    }

    #[test]
    fn many_uniform_masses() {
        let n = 97;
        let probs = vec![1.0 / n as f64; n];
        let q = quantize(&probs);
        assert_eq!(q.iter().sum::<u64>(), SCALE);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_sum_rejected() {
        let _ = quantize(&[0.5, 0.4]);
    }
}
