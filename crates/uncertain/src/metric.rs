//! Metric-parameterised distance distributions.
//!
//! §2.1 of the paper: "Although we assume that δ(u, v) represents Euclidean
//! distance…, our techniques can be trivially extended to other metrics."
//! The *stochastic* operators (S-SD, SS-SD) only consume pairwise
//! distances, so they generalise directly; this module builds their
//! distributions under any [`Metric`]. The geometric accelerations
//! (MBR dominance, convex hulls, bisector half-spaces) are L2-specific and
//! stay with the default pipeline.

use crate::distribution::DistanceDistribution;
use crate::object::UncertainObject;
use crate::stochastic::strictly_dominates;
use osd_geom::Point;

/// The supported point-to-point metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// Manhattan distance.
    L1,
    /// Euclidean distance (the paper's default).
    L2,
    /// Chebyshev distance.
    LInf,
    /// Minkowski distance of order `p ≥ 1`.
    Minkowski(f64),
}

impl Metric {
    /// The distance between two points under this metric.
    pub fn dist(&self, a: &Point, b: &Point) -> f64 {
        match *self {
            Metric::L1 => a.dist_l1(b),
            Metric::L2 => a.dist(b),
            Metric::LInf => a.dist_linf(b),
            Metric::Minkowski(p) => a.dist_minkowski(b, p),
        }
    }
}

/// The distance distribution `U_Q` under `metric`.
pub fn distribution_between(
    object: &UncertainObject,
    query: &UncertainObject,
    metric: Metric,
) -> DistanceDistribution {
    let mut atoms = Vec::with_capacity(object.len() * query.len());
    for q in query.instances() {
        for u in object.instances() {
            atoms.push((metric.dist(&q.point, &u.point), q.prob * u.prob));
        }
    }
    DistanceDistribution::from_atoms(atoms)
}

/// The distance distribution `U_q` under `metric`.
pub fn distribution_to_instance(
    object: &UncertainObject,
    q: &Point,
    metric: Metric,
) -> DistanceDistribution {
    DistanceDistribution::from_atoms(
        object
            .instances()
            .iter()
            .map(|u| (metric.dist(q, &u.point), u.prob))
            .collect(),
    )
}

/// Metric-generalised S-SD (Definition 2 under `metric`).
pub fn s_sd_metric(
    u: &UncertainObject,
    v: &UncertainObject,
    query: &UncertainObject,
    metric: Metric,
) -> bool {
    let du = distribution_between(u, query, metric);
    let dv = distribution_between(v, query, metric);
    strictly_dominates(&du, &dv)
}

/// Metric-generalised SS-SD (Definition 3 under `metric`).
pub fn ss_sd_metric(
    u: &UncertainObject,
    v: &UncertainObject,
    query: &UncertainObject,
    metric: Metric,
) -> bool {
    for q in query.instances() {
        let du = distribution_to_instance(u, &q.point, metric);
        let dv = distribution_to_instance(v, &q.point, metric);
        if !crate::stochastic::stochastically_dominates(&du, &dv) {
            return false;
        }
    }
    let du = distribution_between(u, query, metric);
    let dv = distribution_between(v, query, metric);
    !du.approx_eq(&dv, crate::stochastic::CDF_EPS)
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn obj2(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn l2_matches_default_distribution() {
        let u = obj2(&[(0.0, 0.0), (1.0, 2.0)]);
        let q = obj2(&[(5.0, 5.0)]);
        let a = distribution_between(&u, &q, Metric::L2);
        let b = DistanceDistribution::between(&u, &q);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn metrics_can_disagree_on_dominance() {
        // Pick points where L1 and L∞ order distances differently:
        // from q = (0,0): u = (3, 3): L1 = 6, L∞ = 3; v = (5, 0): L1 = 5, L∞ = 5.
        let q = obj2(&[(0.0, 0.0)]);
        let u = obj2(&[(3.0, 3.0)]);
        let v = obj2(&[(5.0, 0.0)]);
        // L∞: u (3) beats v (5). L1: v (5) beats u (6).
        assert!(s_sd_metric(&u, &v, &q, Metric::LInf));
        assert!(!s_sd_metric(&u, &v, &q, Metric::L1));
        assert!(s_sd_metric(&v, &u, &q, Metric::L1));
    }

    #[test]
    fn clear_separation_dominates_under_every_metric() {
        let q = obj2(&[(0.0, 0.0), (1.0, 1.0)]);
        let u = obj2(&[(1.0, 0.5), (0.5, 1.0)]);
        let v = obj2(&[(30.0, 30.0), (31.0, 29.0)]);
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Minkowski(3.0)] {
            assert!(s_sd_metric(&u, &v, &q, m), "{m:?}");
            assert!(ss_sd_metric(&u, &v, &q, m), "{m:?}");
            assert!(!s_sd_metric(&v, &u, &q, m), "{m:?}");
        }
    }

    #[test]
    fn ss_implies_s_under_any_metric() {
        // Spot-check the Theorem 2 cover relation on a non-L2 metric.
        let q = obj2(&[(0.0, 0.0), (4.0, 0.0)]);
        let u = obj2(&[(1.0, 0.0), (2.0, 1.0)]);
        let v = obj2(&[(1.5, 2.0), (2.5, 3.0)]);
        for m in [Metric::L1, Metric::LInf] {
            if ss_sd_metric(&u, &v, &q, m) {
                assert!(s_sd_metric(&u, &v, &q, m), "cover violated under {m:?}");
            }
        }
    }

    #[test]
    fn identical_objects_not_strict_under_any_metric() {
        let q = obj2(&[(0.0, 0.0)]);
        let u = obj2(&[(1.0, 1.0), (2.0, 2.0)]);
        for m in [Metric::L1, Metric::L2, Metric::LInf] {
            assert!(!s_sd_metric(&u, &u, &q, m));
            assert!(!ss_sd_metric(&u, &u, &q, m));
        }
    }
}
