//! Discrete distance distributions (`U_Q`, `U_q`) and their statistics.
//!
//! Given an object `U` and a query `Q`, the distance distribution `U_Q` is
//! the discrete random variable over all instance pairs: pair `(q, u)`
//! carries value `δ(q, u)` and probability `p(q)·p(u)` (§2.1). The
//! per-query-instance distribution `U_q` restricts to pairs involving `q`.

use crate::object::UncertainObject;
use crate::store::ObjectRef;
use osd_geom::{dist2_rows_batch, Point};

/// A discrete distribution over distances: `(value, probability)` atoms
/// sorted by non-decreasing value.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceDistribution {
    atoms: Vec<(f64, f64)>,
}

impl DistanceDistribution {
    /// Builds a distribution from raw `(value, probability)` atoms.
    ///
    /// Atoms are sorted; equal values are merged. Probabilities must be
    /// positive and sum to 1 (within `1e-6`).
    ///
    /// # Panics
    /// Panics on empty input, non-positive probabilities, or a bad sum.
    pub fn from_atoms(mut atoms: Vec<(f64, f64)>) -> Self {
        assert!(!atoms.is_empty(), "a distribution needs at least one atom");
        let mut sum = 0.0;
        for &(v, p) in &atoms {
            assert!(v.is_finite(), "distribution values must be finite");
            assert!(
                p > 0.0 && p.is_finite(),
                "atom probabilities must be positive"
            );
            sum += p;
        }
        assert!(
            (sum - 1.0).abs() <= 1e-6,
            "atom probabilities must sum to 1, got {sum}"
        );
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Merge equal values to keep the support minimal.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(atoms.len());
        for (v, p) in atoms {
            match merged.last_mut() {
                Some(last) if last.0.total_cmp(&v).is_eq() => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        DistanceDistribution { atoms: merged }
    }

    /// The distance distribution `U_Q` of `object` w.r.t. the multi-instance
    /// `query` — all pairwise distances with product probabilities.
    pub fn between(object: &UncertainObject, query: &UncertainObject) -> Self {
        let mut atoms = Vec::with_capacity(object.len() * query.len());
        for q in query.instances() {
            for u in object.instances() {
                atoms.push((q.point.dist(&u.point), q.prob * u.prob));
            }
        }
        DistanceDistribution::from_atoms(atoms)
    }

    /// The distance distribution `U_q` of `object` w.r.t. a single query
    /// instance `q`.
    pub fn to_instance(object: &UncertainObject, q: &Point) -> Self {
        let atoms = object
            .instances()
            .iter()
            .map(|u| (q.dist(&u.point), u.prob))
            .collect();
        DistanceDistribution::from_atoms(atoms)
    }

    /// Borrowed-store twin of [`DistanceDistribution::between`]: `U_Q` for
    /// an object held in an [`InstanceStore`](crate::InstanceStore) view.
    ///
    /// The atom enumeration order (query-instance outer, object-instance
    /// inner) and the per-pair distance fold are identical to the boxed
    /// path, so the resulting distribution is bit-for-bit the same. The
    /// inner object scan runs through the blocked [`dist2_rows_batch`]
    /// kernel over the contiguous store rows — each row's squared distance
    /// keeps the scalar fold order, and `√δ²` is the scalar `dist_slice`
    /// by definition, so the bit-identity is preserved.
    pub fn between_ref(object: ObjectRef<'_>, query: &UncertainObject) -> Self {
        let mut atoms = Vec::with_capacity(object.len() * query.len());
        let mut d2 = vec![0.0; object.len()];
        for q in query.instances() {
            dist2_rows_batch(object.coords(), object.dim(), q.point.coords(), &mut d2);
            for (i, &dd) in d2.iter().enumerate() {
                atoms.push((dd.sqrt(), q.prob * object.prob(i)));
            }
        }
        DistanceDistribution::from_atoms(atoms)
    }

    /// Borrowed-store twin of [`DistanceDistribution::to_instance`]: `U_q`
    /// for an object held in an [`InstanceStore`](crate::InstanceStore)
    /// view. Blocked like [`DistanceDistribution::between_ref`], with the
    /// same bit-identity argument.
    pub fn to_instance_ref(object: ObjectRef<'_>, q: &Point) -> Self {
        let mut d2 = vec![0.0; object.len()];
        dist2_rows_batch(object.coords(), object.dim(), q.coords(), &mut d2);
        let atoms = d2
            .iter()
            .enumerate()
            .map(|(i, &dd)| (dd.sqrt(), object.prob(i)))
            .collect();
        DistanceDistribution::from_atoms(atoms)
    }

    /// The sorted `(value, probability)` atoms.
    #[inline]
    pub fn atoms(&self) -> &[(f64, f64)] {
        &self.atoms
    }

    /// Number of distinct support values.
    pub fn support_size(&self) -> usize {
        self.atoms.len()
    }

    /// Smallest support value.
    pub fn min(&self) -> f64 {
        self.atoms[0].0
    }

    /// Largest support value.
    pub fn max(&self) -> f64 {
        self.atoms[self.atoms.len() - 1].0
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.atoms.iter().map(|&(v, p)| v * p).sum()
    }

    /// The φ-quantile (Definition 10): the value of the first atom at which
    /// the accumulated probability reaches `φ`.
    ///
    /// # Panics
    /// Panics unless `0 < φ ≤ 1`.
    pub fn quantile(&self, phi: f64) -> f64 {
        assert!(phi > 0.0 && phi <= 1.0, "quantile level must be in (0, 1]");
        let mut acc = 0.0;
        for &(v, p) in &self.atoms {
            acc += p;
            // Small tolerance so that e.g. φ = 0.5 hits an atom whose
            // accumulated mass is 0.5 up to float rounding.
            if acc + 1e-12 >= phi {
                return v;
            }
        }
        self.max()
    }

    /// `Pr(X ≤ λ)`.
    pub fn cdf(&self, lambda: f64) -> f64 {
        self.atoms
            .iter()
            .take_while(|&&(v, _)| v <= lambda)
            .map(|&(_, p)| p)
            .sum()
    }

    /// Approximate equality of distributions (same support and masses up to
    /// `eps`). Used for the `U_Q ≠ V_Q` side condition of Definitions 2/3/5.
    pub fn approx_eq(&self, other: &Self, eps: f64) -> bool {
        self.atoms.len() == other.atoms.len()
            && self
                .atoms
                .iter()
                .zip(other.atoms.iter())
                .all(|(&(v1, p1), &(v2, p2))| (v1 - v2).abs() <= eps && (p1 - p2).abs() <= eps)
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    /// Example 1 of the paper (Figure 6(b)): A_Q = {(5,.25),(8,.25),(10,.25),(23,.25)}.
    #[test]
    fn paper_example_1_distribution() {
        // Construct points realising the distances of Figure 6(b):
        // δ(q1,a1)=5, δ(q1,a2)=8, δ(q2,a1)=10, δ(q2,a2)=23. Use 1-D points on
        // a line: q1 = 0, a1 = 5, a2 = 8 gives δ(q1,·) = 5, 8. Pick q2 = 15:
        // δ(q2,a1) = 10, δ(q2,a2) = 7 — wrong; use q2 = -5: δ = 10, 13 — wrong.
        // Distances cannot all be realised in 1-D, so feed atoms directly.
        let a_q = DistanceDistribution::from_atoms(vec![
            (5.0, 0.25),
            (8.0, 0.25),
            (10.0, 0.25),
            (23.0, 0.25),
        ]);
        assert_eq!(a_q.min(), 5.0);
        assert_eq!(a_q.max(), 23.0);
        assert!((a_q.mean() - 11.5).abs() < 1e-12);
        assert_eq!(a_q.quantile(0.25), 5.0);
        assert_eq!(a_q.quantile(0.5), 8.0);
        assert_eq!(a_q.quantile(1.0), 23.0);
    }

    #[test]
    fn between_enumerates_all_pairs() {
        let a = UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.0)]);
        let q = UncertainObject::uniform(vec![p2(0.0, 0.0), p2(0.0, 2.0)]);
        let d = DistanceDistribution::between(&a, &q);
        // distances: 0, 1, 2, sqrt(5); all prob 0.25
        assert_eq!(d.support_size(), 4);
        assert_eq!(d.min(), 0.0);
        assert!((d.max() - 5f64.sqrt()).abs() < 1e-12);
        let total: f64 = d.atoms().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn to_instance_uses_instance_probs() {
        let a = UncertainObject::new(vec![(p2(3.0, 0.0), 0.3), (p2(0.0, 4.0), 0.7)]);
        let d = DistanceDistribution::to_instance(&a, &p2(0.0, 0.0));
        assert_eq!(d.atoms(), &[(3.0, 0.3), (4.0, 0.7)]);
    }

    #[test]
    fn ref_constructors_match_boxed_constructors_bitwise() {
        use crate::store::InstanceStore;
        let objects = vec![
            UncertainObject::new(vec![(p2(3.0, 0.0), 0.3), (p2(0.0, 4.0), 0.7)]),
            UncertainObject::uniform(vec![p2(0.1, 0.2), p2(-1.5, 2.25), p2(3.0, 3.0)]),
        ];
        let query = UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 1.0)]);
        let store = InstanceStore::from_objects(&objects).unwrap();
        for (id, o) in objects.iter().enumerate() {
            let boxed = DistanceDistribution::between(o, &query);
            let via_ref = DistanceDistribution::between_ref(store.object(id), &query);
            assert_eq!(boxed.atoms().len(), via_ref.atoms().len());
            for (a, b) in boxed.atoms().iter().zip(via_ref.atoms().iter()) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            for q in query.instances() {
                let boxed = DistanceDistribution::to_instance(o, &q.point);
                let via_ref = DistanceDistribution::to_instance_ref(store.object(id), &q.point);
                assert_eq!(boxed, via_ref);
            }
        }
    }

    #[test]
    fn merging_equal_values() {
        let d = DistanceDistribution::from_atoms(vec![(1.0, 0.5), (1.0, 0.25), (2.0, 0.25)]);
        assert_eq!(d.support_size(), 2);
        assert_eq!(d.atoms()[0], (1.0, 0.75));
    }

    #[test]
    fn cdf_steps() {
        let d = DistanceDistribution::from_atoms(vec![(1.0, 0.5), (3.0, 0.5)]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.5);
        assert_eq!(d.cdf(2.9), 0.5);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn approx_eq_detects_differences() {
        let d1 = DistanceDistribution::from_atoms(vec![(1.0, 0.5), (2.0, 0.5)]);
        let d2 = DistanceDistribution::from_atoms(vec![(1.0, 0.5), (2.0, 0.5)]);
        let d3 = DistanceDistribution::from_atoms(vec![(1.0, 0.4), (2.0, 0.6)]);
        assert!(d1.approx_eq(&d2, 1e-9));
        assert!(!d1.approx_eq(&d3, 1e-9));
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn quantile_zero_rejected() {
        let d = DistanceDistribution::from_atoms(vec![(1.0, 1.0)]);
        let _ = d.quantile(0.0);
    }
}
