//! Property tests for the stochastic order, match order and quantisation.

use osd_geom::Point;
use osd_uncertain::{
    construct_match, is_valid_match, match_dominates, quantize, s_sd_metric,
    stochastically_dominates, strictly_dominates, DistanceDistribution, Metric, UncertainObject,
    SCALE,
};
use proptest::prelude::*;

/// Strategy: a random discrete distribution with `n` atoms, values in
/// `[0, 100)`, masses normalised to 1.
fn dist_strategy(max_atoms: usize) -> impl Strategy<Value = DistanceDistribution> {
    prop::collection::vec((0.0f64..100.0, 0.05f64..1.0), 1..max_atoms).prop_map(|atoms| {
        let total: f64 = atoms.iter().map(|&(_, w)| w).sum();
        DistanceDistribution::from_atoms(atoms.into_iter().map(|(v, w)| (v, w / total)).collect())
    })
}

/// CDF-probe oracle for `x ⪯_st y`.
fn st_oracle(x: &DistanceDistribution, y: &DistanceDistribution) -> bool {
    let mut probes: Vec<f64> = x
        .atoms()
        .iter()
        .chain(y.atoms().iter())
        .map(|&(v, _)| v)
        .collect();
    probes.sort_by(f64::total_cmp);
    probes.iter().all(|&l| x.cdf(l) >= y.cdf(l) - 1e-7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The single-scan decision matches the CDF definition.
    #[test]
    fn prop_scan_matches_cdf_oracle(x in dist_strategy(12), y in dist_strategy(12)) {
        prop_assert_eq!(stochastically_dominates(&x, &y), st_oracle(&x, &y));
    }

    /// Theorem 1: match order ⇔ stochastic order, and the constructed match
    /// is valid with every tuple pairing x ≤ y.
    #[test]
    fn prop_theorem1_equivalence(x in dist_strategy(10), y in dist_strategy(10)) {
        let st = stochastically_dominates(&x, &y);
        prop_assert_eq!(match_dominates(&x, &y), st);
        if st {
            let m = construct_match(&x, &y).unwrap();
            prop_assert!(is_valid_match(&x, &y, &m));
            for t in &m {
                prop_assert!(x.atoms()[t.x].0 <= y.atoms()[t.y].0 + 1e-7);
            }
        }
    }

    /// Reflexivity and antisymmetry-up-to-equality of `⪯_st`.
    #[test]
    fn prop_reflexive_and_antisymmetric(x in dist_strategy(10), y in dist_strategy(10)) {
        prop_assert!(stochastically_dominates(&x, &x));
        if stochastically_dominates(&x, &y) && stochastically_dominates(&y, &x) {
            // Mutual dominance forces identical CDFs at all probe points.
            let probes: Vec<f64> = x.atoms().iter().chain(y.atoms()).map(|&(v, _)| v).collect();
            for l in probes {
                prop_assert!((x.cdf(l) - y.cdf(l)).abs() < 1e-6);
            }
        }
    }

    /// Transitivity of `⪯_st`.
    #[test]
    fn prop_transitive(
        x in dist_strategy(8), y in dist_strategy(8), z in dist_strategy(8),
    ) {
        if stochastically_dominates(&x, &y) && stochastically_dominates(&y, &z) {
            prop_assert!(stochastically_dominates(&x, &z));
        }
    }

    /// Stochastic dominance implies ordering of min, mean, max and all
    /// quantiles (Theorem 11 + the stability of `quan_φ`, §3.2).
    #[test]
    fn prop_dominance_orders_statistics(x in dist_strategy(10), y in dist_strategy(10)) {
        if stochastically_dominates(&x, &y) {
            prop_assert!(x.min() <= y.min() + 1e-9);
            prop_assert!(x.mean() <= y.mean() + 1e-9);
            prop_assert!(x.max() <= y.max() + 1e-9);
            for phi in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
                prop_assert!(x.quantile(phi) <= y.quantile(phi) + 1e-9);
            }
        }
    }

    /// The L2 metric-generalised S-SD equals the default (strict) check.
    #[test]
    fn prop_l2_metric_matches_default(
        upts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..5),
        vpts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..5),
        qpts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..4),
    ) {
        let mk = |pts: &Vec<(f64, f64)>| {
            UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
        };
        let (u, v, q) = (mk(&upts), mk(&vpts), mk(&qpts));
        let metric = s_sd_metric(&u, &v, &q, Metric::L2);
        let du = DistanceDistribution::between(&u, &q);
        let dv = DistanceDistribution::between(&v, &q);
        prop_assert_eq!(metric, strictly_dominates(&du, &dv));
    }

    /// Under every metric, dominance still implies the ordering of the
    /// distribution statistics (stability is metric-independent).
    #[test]
    fn prop_metric_dominance_orders_means(
        upts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..5),
        vpts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..5),
        qpts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..4),
    ) {
        use osd_uncertain::metric::distribution_between;
        let mk = |pts: &Vec<(f64, f64)>| {
            UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
        };
        let (u, v, q) = (mk(&upts), mk(&vpts), mk(&qpts));
        for m in [Metric::L1, Metric::LInf, Metric::Minkowski(3.0)] {
            if s_sd_metric(&u, &v, &q, m) {
                let du = distribution_between(&u, &q, m);
                let dv = distribution_between(&v, &q, m);
                prop_assert!(du.mean() <= dv.mean() + 1e-9, "{:?}", m);
                prop_assert!(du.min() <= dv.min() + 1e-9, "{:?}", m);
                prop_assert!(du.max() <= dv.max() + 1e-9, "{:?}", m);
            }
        }
    }

    /// Quantisation: exact total, near-proportional masses, positivity.
    #[test]
    fn prop_quantize_invariants(ws in prop::collection::vec(0.01f64..1.0, 1..64)) {
        let total: f64 = ws.iter().sum();
        let probs: Vec<f64> = ws.iter().map(|w| w / total).collect();
        let q = quantize(&probs);
        prop_assert_eq!(q.iter().sum::<u64>(), SCALE);
        for (qi, pi) in q.iter().zip(probs.iter()) {
            prop_assert!(*qi >= 1);
            let err = (*qi as f64 - pi * SCALE as f64).abs();
            prop_assert!(err <= ws.len() as f64 + 1.0, "quantisation error too large: {err}");
        }
    }
}
