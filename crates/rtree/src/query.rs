//! Spatial queries: range, nearest, furthest and generic best-first
//! traversal in non-decreasing (or non-increasing) key order.

use crate::node::{Node, RTree};
use osd_geom::{Mbr, Point};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

impl<T> RTree<T> {
    /// All items whose MBR intersects `query`.
    pub fn range_intersecting(&self, query: &Mbr) -> Vec<&T> {
        let mut out = Vec::new();
        if let Some(c) = &self.root {
            if c.mbr.intersects(query) {
                range_rec(&c.node, query, &mut out);
            }
        }
        out
    }

    /// All items whose MBR is fully contained in `query`.
    ///
    /// For point data this is the rectangular range query used by the
    /// distance-space network construction of §5.1.2.
    pub fn range_contained(&self, query: &Mbr) -> Vec<&T> {
        let mut out = Vec::new();
        if let Some(c) = &self.root {
            if c.mbr.intersects(query) {
                contained_rec(&c.node, query, &mut out);
            }
        }
        out
    }

    /// The item nearest to `p` by minimal MBR distance, with that distance.
    ///
    /// For point payloads (degenerate boxes) this is the exact nearest
    /// neighbour; this is the `δ_min(q, V)` primitive of the instance-level
    /// F-SD check (§6).
    pub fn nearest(&self, p: &Point) -> Option<(&T, f64)> {
        let p = p.clone();
        self.nearest_by(move |mbr| mbr.min_dist2_point(&p))
            .map(|(t, d2)| (t, d2.sqrt()))
    }

    /// The item with the greatest maximal MBR distance from `p`.
    ///
    /// For point payloads this is the exact furthest neighbour — the
    /// `δ_max(q, U)` primitive of the instance-level F-SD check (§6).
    pub fn furthest(&self, p: &Point) -> Option<(&T, f64)> {
        // Best-first on the *upper* bound: a node's max distance bounds all
        // items below it from above, so negating gives a monotone key.
        let p = p.clone();
        self.nearest_by(move |mbr| -mbr.max_dist2_point(&p))
            .map(|(t, d2)| (t, (-d2).sqrt()))
    }

    /// [`RTree::nearest`] with a traversal-cost hook: adds the number of
    /// tree nodes expanded by the best-first search to `visits`.
    pub fn nearest_counting(&self, p: &Point, visits: &mut u64) -> Option<(&T, f64)> {
        let p = p.clone();
        let mut iter = self.iter_by(move |mbr| mbr.min_dist2_point(&p));
        let hit = iter.next().map(|(t, d2)| (t, d2.sqrt()));
        *visits += iter.nodes_visited();
        hit
    }

    /// [`RTree::furthest`] with a traversal-cost hook: adds the number of
    /// tree nodes expanded by the best-first search to `visits`.
    pub fn furthest_counting(&self, p: &Point, visits: &mut u64) -> Option<(&T, f64)> {
        let p = p.clone();
        let mut iter = self.iter_by(move |mbr| -mbr.max_dist2_point(&p));
        let hit = iter.next().map(|(t, d2)| (t, (-d2).sqrt()));
        *visits += iter.nodes_visited();
        hit
    }

    /// The `k` items nearest to `p` (by minimal MBR distance), closest first.
    pub fn k_nearest(&self, p: &Point, k: usize) -> Vec<(&T, f64)> {
        let p = p.clone();
        let mut out = Vec::with_capacity(k);
        for (t, d2) in self.iter_by(move |mbr| mbr.min_dist2_point(&p)).take(k) {
            out.push((t, d2.sqrt()));
        }
        out
    }

    /// First item of a best-first traversal keyed by `key` on MBRs.
    pub fn nearest_by<'a, F: Fn(&Mbr) -> f64 + 'a>(&'a self, key: F) -> Option<(&'a T, f64)> {
        self.iter_by(key).next()
    }

    /// Minimal squared distance from *any* of `queries` to any item MBR —
    /// `min_q min_e δ²(e, q)` — in **one** pruned best-first descent.
    ///
    /// Nodes are keyed by `min_q min_dist²(mbr, q)` and the single best
    /// value found so far prunes every probe at once, instead of running
    /// |queries| independent nearest searches that each re-descend the
    /// tree. The returned value equals the fold
    /// `min_q nearest(q).d²` bit-for-bit: each candidate `d²` is computed
    /// by the same `min_dist2_point` kernel, and `f64::min` over the same
    /// multiset of non-negative values (squared distances are never
    /// `-0.0`) is order-insensitive at the bit level.
    ///
    /// Expanded tree nodes are added to `visits`; the shared bound makes
    /// this count at most — and typically far below — the sum of the
    /// per-query searches. `None` iff the tree or `queries` is empty.
    pub fn min_dist2_multi(&self, queries: &[Point], visits: &mut u64) -> Option<f64> {
        let root = self.root.as_ref()?;
        if queries.is_empty() {
            return None;
        }
        let key_of = |mbr: &Mbr| {
            queries
                .iter()
                .map(|q| mbr.min_dist2_point(q))
                .fold(f64::INFINITY, f64::min)
        };
        let mut best = f64::INFINITY;
        let mut found = false;
        let mut heap = BinaryHeap::new();
        heap.push(MultiItem {
            key: key_of(&root.mbr),
            node: &root.node,
        });
        while let Some(MultiItem { key, node }) = heap.pop() {
            // Shared prune bound: a node whose best-case distance cannot
            // beat the current minimum is skipped without expansion.
            if found && key >= best {
                continue;
            }
            *visits += 1;
            match node {
                Node::Leaf(es) => {
                    for e in es {
                        best = best.min(key_of(&e.mbr));
                        found = true;
                    }
                }
                Node::Inner(cs) => {
                    for c in cs {
                        let k = key_of(&c.mbr);
                        if !found || k < best {
                            heap.push(MultiItem {
                                key: k,
                                node: &c.node,
                            });
                        }
                    }
                }
            }
        }
        found.then_some(best)
    }

    /// Best-first traversal yielding `(item, key(item_mbr))` in
    /// non-decreasing key order.
    ///
    /// `key` must be monotone: `key(parent_mbr) ≤ key(child_mbr)` for every
    /// child contained in the parent. Both `min_dist*` (lower bounds) and
    /// negated `max_dist*` (upper bounds) satisfy this.
    pub fn iter_by<'a, F: Fn(&Mbr) -> f64 + 'a>(&'a self, key: F) -> BestFirstIter<'a, T, F> {
        let mut heap = BinaryHeap::new();
        if let Some(c) = &self.root {
            heap.push(HeapItem {
                key: key(&c.mbr),
                slot: Slot::Node(&c.node),
            });
        }
        BestFirstIter {
            heap,
            key,
            nodes_visited: 0,
        }
    }
}

fn range_rec<'a, T>(node: &'a Node<T>, query: &Mbr, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf(es) => {
            for e in es {
                if e.mbr.intersects(query) {
                    out.push(&e.item);
                }
            }
        }
        Node::Inner(cs) => {
            for c in cs {
                if c.mbr.intersects(query) {
                    range_rec(&c.node, query, out);
                }
            }
        }
    }
}

fn contained_rec<'a, T>(node: &'a Node<T>, query: &Mbr, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf(es) => {
            for e in es {
                if query.contains(&e.mbr) {
                    out.push(&e.item);
                }
            }
        }
        Node::Inner(cs) => {
            for c in cs {
                if c.mbr.intersects(query) {
                    contained_rec(&c.node, query, out);
                }
            }
        }
    }
}

/// Heap entry of the multi-point descent: a subtree keyed by its best-case
/// squared distance over all probe points.
struct MultiItem<'a, T> {
    key: f64,
    node: &'a Node<T>,
}

impl<T> PartialEq for MultiItem<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key).is_eq()
    }
}
impl<T> Eq for MultiItem<'_, T> {}
impl<T> PartialOrd for MultiItem<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MultiItem<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on key via reversed comparison.
        other.key.total_cmp(&self.key)
    }
}

enum Slot<'a, T> {
    Node(&'a Node<T>),
    Item(&'a T),
}

struct HeapItem<'a, T> {
    key: f64,
    slot: Slot<'a, T>,
}

impl<T> PartialEq for HeapItem<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for HeapItem<'_, T> {}
impl<T> PartialOrd for HeapItem<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on key via reversed comparison.
        other.key.total_cmp(&self.key)
    }
}

/// Iterator produced by [`RTree::iter_by`].
pub struct BestFirstIter<'a, T, F: Fn(&Mbr) -> f64> {
    heap: BinaryHeap<HeapItem<'a, T>>,
    key: F,
    nodes_visited: u64,
}

impl<T, F: Fn(&Mbr) -> f64> BestFirstIter<'_, T, F> {
    /// Tree nodes (leaf or inner) expanded so far — the traversal-cost
    /// counter surfaced by the `*_counting` query variants.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited
    }
}

impl<'a, T, F: Fn(&Mbr) -> f64> Iterator for BestFirstIter<'a, T, F> {
    type Item = (&'a T, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(HeapItem { key, slot }) = self.heap.pop() {
            match slot {
                Slot::Item(t) => return Some((t, key)),
                Slot::Node(Node::Leaf(es)) => {
                    self.nodes_visited += 1;
                    for e in es {
                        self.heap.push(HeapItem {
                            key: (self.key)(&e.mbr),
                            slot: Slot::Item(&e.item),
                        });
                    }
                }
                Slot::Node(Node::Inner(cs)) => {
                    self.nodes_visited += 1;
                    for c in cs {
                        self.heap.push(HeapItem {
                            key: (self.key)(&c.mbr),
                            slot: Slot::Node(&c.node),
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::node::RTree;
    use osd_geom::Point;

    fn line_tree(n: usize) -> RTree<usize> {
        let rows: Vec<f64> = (0..n).flat_map(|i| [i as f64, 0.0]).collect();
        RTree::bulk_load_rows(4, 2, &rows)
    }

    #[test]
    fn counting_variants_match_plain_queries() {
        let t = line_tree(40);
        let probe = Point::new(vec![17.2, 0.0]);
        let mut visits = 0;
        assert_eq!(t.nearest_counting(&probe, &mut visits), t.nearest(&probe));
        assert!(visits > 0, "a non-empty tree expands at least the root");
        let before = visits;
        assert_eq!(t.furthest_counting(&probe, &mut visits), t.furthest(&probe));
        assert!(visits > before, "visits accumulate across calls");
    }

    #[test]
    fn counting_on_empty_tree_is_zero() {
        let t: RTree<usize> = RTree::bulk_load_rows(4, 2, &[]);
        let mut visits = 0;
        assert!(t
            .nearest_counting(&Point::new(vec![0.0, 0.0]), &mut visits)
            .is_none());
        assert_eq!(visits, 0);
    }

    #[test]
    fn multi_point_descent_matches_per_query_fold_bitwise() {
        let t = line_tree(40);
        let probes = vec![
            Point::new(vec![17.2, 0.0]),
            Point::new(vec![3.9, 1.5]),
            Point::new(vec![-2.0, 0.25]),
            Point::new(vec![38.6, -4.0]),
        ];
        // Scalar baseline: one full nearest search per probe, folding the
        // squared distances with f64::min (the ProgressiveNnc pattern).
        let mut scalar_visits = 0u64;
        let scalar = probes
            .iter()
            .map(|q| {
                let (_, d) = t.nearest_counting(q, &mut scalar_visits).unwrap();
                d * d
            })
            .fold(f64::INFINITY, f64::min);
        let mut multi_visits = 0u64;
        let multi = t.min_dist2_multi(&probes, &mut multi_visits).unwrap();
        // Bit-identity after the sqrt-then-square round trip of the scalar
        // path: √ and x² are monotone, so min commutes with them.
        let rounded = {
            let d = multi.sqrt();
            d * d
        };
        assert_eq!(rounded.to_bits(), scalar.to_bits());
        assert!(multi_visits > 0);
        assert!(
            multi_visits <= scalar_visits,
            "shared bound must not expand more nodes than |Q| searches \
             ({multi_visits} vs {scalar_visits})"
        );
    }

    #[test]
    fn multi_point_descent_empty_cases() {
        let t = line_tree(8);
        let mut visits = 0u64;
        assert!(t.min_dist2_multi(&[], &mut visits).is_none());
        assert_eq!(visits, 0);
        let empty: RTree<usize> = RTree::bulk_load_rows(4, 2, &[]);
        assert!(empty
            .min_dist2_multi(&[Point::new(vec![0.0, 0.0])], &mut visits)
            .is_none());
        assert_eq!(visits, 0);
    }

    #[test]
    fn multi_point_descent_with_duplicate_probes_matches_single_probe() {
        let t = line_tree(40);
        let single = vec![Point::new(vec![17.2, 0.3])];
        let mut single_visits = 0u64;
        let single_best = t.min_dist2_multi(&single, &mut single_visits).unwrap();
        // The same probe repeated: identical distance multiset, identical
        // best value, and the shared bound keeps the extra probes from
        // inflating the descent.
        let dup = vec![single[0].clone(); 5];
        let mut dup_visits = 0u64;
        let dup_best = t.min_dist2_multi(&dup, &mut dup_visits).unwrap();
        assert_eq!(dup_best.to_bits(), single_best.to_bits());
        assert_eq!(
            dup_visits, single_visits,
            "duplicate probes share every key, so the descent is identical"
        );
    }

    #[test]
    fn multi_point_descent_probe_on_mbr_corners() {
        let t = line_tree(40);
        // Probes placed exactly on MBR corners of the data: the root MBR
        // spans (0,0)..(39,0); its corners are data points, so the minimal
        // squared distance is exactly 0.0 with no rounding slack.
        let corners = vec![Point::new(vec![0.0, 0.0]), Point::new(vec![39.0, 0.0])];
        let mut visits = 0u64;
        let best = t.min_dist2_multi(&corners, &mut visits).unwrap();
        assert_eq!(best.to_bits(), 0.0f64.to_bits());
        // A probe on the MBR boundary but between data points: min_dist2 to
        // the enclosing boxes is 0, yet the true item distance is positive —
        // the descent must refine through the 0-keyed nodes to the items.
        let boundary = vec![Point::new(vec![17.5, 0.0])];
        let mut v2 = 0u64;
        let d2 = t.min_dist2_multi(&boundary, &mut v2).unwrap();
        assert_eq!(d2.to_bits(), 0.25f64.to_bits());
    }

    #[test]
    fn multi_point_descent_visits_never_exceed_single_probe_sum() {
        // Shared-bound tightening regression: across many probe sets, the
        // one-descent multi-probe search must never expand more nodes than
        // the sum of the per-probe searches it replaces.
        let t = line_tree(64);
        for scale in [0.5, 2.0, 7.3] {
            for n_probes in [1usize, 2, 3, 5, 8] {
                let probes: Vec<Point> = (0..n_probes)
                    .map(|i| Point::new(vec![i as f64 * scale, (i % 2) as f64 - 0.5]))
                    .collect();
                let mut per_probe_sum = 0u64;
                for q in &probes {
                    let _ = t.nearest_counting(q, &mut per_probe_sum);
                }
                let mut multi_visits = 0u64;
                let _ = t.min_dist2_multi(&probes, &mut multi_visits).unwrap();
                assert!(
                    multi_visits <= per_probe_sum,
                    "{n_probes} probes at scale {scale}: multi descent expanded \
                     {multi_visits} nodes vs per-probe sum {per_probe_sum}"
                );
            }
        }
    }

    #[test]
    fn best_first_visits_are_bounded_by_node_count() {
        let t = line_tree(64);
        let probe = Point::new(vec![0.0, 0.0]);
        let mut visits = 0;
        let _ = t.nearest_counting(&probe, &mut visits);
        // A nearest query can expand at most every node once.
        let height = t.height().unwrap_or(0) as u64;
        assert!(visits >= height, "must at least walk root-to-leaf");
        assert!(visits <= 64 + 16 + 4 + 1, "bounded by total node count");
    }
}
