//! R-tree node structure and core tree type.
//!
//! The paper's evaluation (§6) organises data with *n + 1* R-trees: one
//! global R-tree over the objects' MBRs and one small local R-tree (fan-out
//! 4) per object over its instances. Both are instances of this generic
//! [`RTree`], parameterised by the payload type.
//!
//! Nodes are exposed read-only so that the dominance-search algorithms in
//! `osd-core` can drive their own best-first traversals with
//! dominance-based pruning (Algorithm 1) and run the level-by-level
//! pruning/validation of §5.1.2 against node MBRs.

use osd_geom::{Mbr, Point};

/// A leaf entry: a payload together with its bounding box.
///
/// Point data is stored with a degenerate (zero-volume) MBR.
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// Bounding box of the item.
    pub mbr: Mbr,
    /// The payload.
    pub item: T,
}

/// An internal-node slot: a child subtree with its bounding box.
#[derive(Debug, Clone)]
pub struct Child<T> {
    /// Bounding box of the whole subtree.
    pub mbr: Mbr,
    /// The subtree.
    pub node: Box<Node<T>>,
}

/// An R-tree node.
#[derive(Debug, Clone)]
pub enum Node<T> {
    /// A leaf holding data entries.
    Leaf(Vec<Entry<T>>),
    /// An internal node holding children.
    Inner(Vec<Child<T>>),
}

impl<T> Node<T> {
    /// Tightest box over this node's slots.
    ///
    /// # Panics
    /// Panics if the node is empty (empty nodes never appear in a valid tree).
    pub fn mbr(&self) -> Mbr {
        match self {
            Node::Leaf(es) => {
                assert!(!es.is_empty(), "empty leaf node has no MBR");
                let mut m = es[0].mbr.clone();
                for e in &es[1..] {
                    m.expand(&e.mbr);
                }
                m
            }
            Node::Inner(cs) => {
                assert!(!cs.is_empty(), "empty inner node has no MBR");
                let mut m = cs[0].mbr.clone();
                for c in &cs[1..] {
                    m.expand(&c.mbr);
                }
                m
            }
        }
    }

    /// Number of slots (entries or children) directly in this node.
    pub fn slot_count(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Inner(cs) => cs.len(),
        }
    }

    /// Height of the subtree (leaf = 0).
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner(cs) => 1 + cs.iter().map(|c| c.node.height()).max().unwrap_or(0),
        }
    }

    /// Collects references to every item in the subtree.
    pub fn collect_items<'a>(&'a self, out: &mut Vec<&'a T>) {
        match self {
            Node::Leaf(es) => out.extend(es.iter().map(|e| &e.item)),
            Node::Inner(cs) => {
                for c in cs {
                    c.node.collect_items(out);
                }
            }
        }
    }

    /// Total number of items in the subtree.
    pub fn item_count(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Inner(cs) => cs.iter().map(|c| c.node.item_count()).sum(),
        }
    }

    /// Total number of tree nodes in the subtree, this node included.
    pub fn node_count(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner(cs) => 1 + cs.iter().map(|c| c.node.node_count()).sum::<usize>(),
        }
    }
}

/// An in-memory R-tree with configurable fan-out.
///
/// Built either by [`RTree::bulk_load`] (Sort-Tile-Recursive packing, the
/// way the experiment datasets are indexed) or incrementally with
/// [`RTree::insert`] (Guttman-style with quadratic split).
#[derive(Debug, Clone)]
pub struct RTree<T> {
    pub(crate) root: Option<Child<T>>,
    pub(crate) max_entries: usize,
    pub(crate) len: usize,
}

impl<T> RTree<T> {
    /// Creates an empty tree with the given maximum fan-out.
    ///
    /// # Panics
    /// Panics if `max_entries < 2`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree fan-out must be at least 2");
        RTree {
            root: None,
            max_entries,
            len: 0,
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum node fan-out.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The root node, if any.
    pub fn root(&self) -> Option<&Node<T>> {
        self.root.as_ref().map(|c| c.node.as_ref())
    }

    /// Bounding box of the whole tree, if non-empty.
    pub fn mbr(&self) -> Option<&Mbr> {
        self.root.as_ref().map(|c| &c.mbr)
    }

    /// Height of the tree (single leaf = 0). `None` when empty.
    pub fn height(&self) -> Option<usize> {
        self.root.as_ref().map(|c| c.node.height())
    }

    /// Total number of tree nodes (leaves and inner nodes); 0 when empty.
    ///
    /// An upper bound on the `visits` any single best-first descent can
    /// charge — the per-shard memory/size statistic of the sharded index.
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map_or(0, |c| c.node.node_count())
    }

    /// Groups the items by the tree nodes at `level` steps below the root
    /// (level 0 = the root's direct decomposition is level 1; level 0 yields
    /// one group per root). Subtrees shallower than `level` contribute their
    /// leaves. Each group carries its node MBR.
    ///
    /// This is the partition `U = {U¹, …, U^k}` used by the level-by-level
    /// pruning and validation of §5.1.2.
    pub fn level_groups(&self, level: usize) -> Vec<(Mbr, Vec<&T>)> {
        let mut out = Vec::new();
        if let Some(c) = &self.root {
            collect_level(&c.node, &c.mbr, level, &mut out);
        }
        out
    }

    /// Iterates over all items.
    pub fn items(&self) -> Vec<&T> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(c) = &self.root {
            c.node.collect_items(&mut out);
        }
        out
    }
}

fn collect_level<'a, T>(
    node: &'a Node<T>,
    mbr: &Mbr,
    level: usize,
    out: &mut Vec<(Mbr, Vec<&'a T>)>,
) {
    if level == 0 {
        let mut items = Vec::new();
        node.collect_items(&mut items);
        out.push((mbr.clone(), items));
        return;
    }
    match node {
        Node::Leaf(es) => {
            // Shallower than requested: each entry forms its own group so the
            // caller still sees the finest available granularity.
            for e in es {
                out.push((e.mbr.clone(), vec![&e.item]));
            }
        }
        Node::Inner(cs) => {
            for c in cs {
                collect_level(&c.node, &c.mbr, level - 1, out);
            }
        }
    }
}

/// Convenience constructor for point payloads: wraps each point in a
/// degenerate MBR entry.
pub fn point_entries<T, F: Fn(&T) -> &Point>(items: Vec<T>, point_of: F) -> Vec<Entry<T>> {
    items
        .into_iter()
        .map(|item| {
            let mbr = Mbr::from_point(point_of(&item));
            Entry { mbr, item }
        })
        .collect()
}
