//! Incremental insertion (Guttman's algorithm with quadratic split).

use crate::node::{Child, Entry, Node, RTree};
use osd_geom::Mbr;

impl<T> RTree<T> {
    /// Inserts an item with its bounding box.
    pub fn insert(&mut self, mbr: Mbr, item: T) {
        self.len += 1;
        let entry = Entry { mbr, item };
        match self.root.take() {
            None => {
                let mbr = entry.mbr.clone();
                self.root = Some(Child {
                    mbr,
                    node: Box::new(Node::Leaf(vec![entry])),
                });
            }
            Some(mut root) => {
                root.mbr.expand(&entry.mbr);
                if let Some(split) = insert_rec(&mut root.node, entry, self.max_entries) {
                    // Root overflowed: grow the tree by one level. The old
                    // root's box must be re-tightened — the split moved some
                    // of its entries into the new sibling.
                    let mut old = root;
                    old.mbr = old.node.mbr();
                    let mut mbr = old.mbr.clone();
                    mbr.expand(&split.mbr);
                    self.root = Some(Child {
                        mbr,
                        node: Box::new(Node::Inner(vec![old, split])),
                    });
                } else {
                    self.root = Some(root);
                }
            }
        }
        #[cfg(feature = "strict-invariants")]
        if let Err(e) = self.validate_structure() {
            debug_assert!(false, "R-tree invariant broken after insert: {e}");
        }
    }
}

/// Recursive insertion; returns a new sibling child if `node` was split.
fn insert_rec<T>(node: &mut Node<T>, entry: Entry<T>, cap: usize) -> Option<Child<T>> {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() <= cap {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(entries), |e: &Entry<T>| &e.mbr);
            let mbr_b = mbr_of(&b, |e| &e.mbr);
            *entries = a;
            Some(Child {
                mbr: mbr_b,
                node: Box::new(Node::Leaf(b)),
            })
        }
        Node::Inner(children) => {
            // Choose the child needing the least volume enlargement
            // (ties: smaller volume).
            assert!(!children.is_empty(), "inner node with no children");
            let best = (0..children.len())
                .min_by(|&i, &j| {
                    let (ei, vi) = enlargement(&children[i].mbr, &entry.mbr);
                    let (ej, vj) = enlargement(&children[j].mbr, &entry.mbr);
                    ei.total_cmp(&ej).then(vi.total_cmp(&vj))
                })
                .unwrap_or(0);
            children[best].mbr.expand(&entry.mbr);
            if let Some(split) = insert_rec(&mut children[best].node, entry, cap) {
                // Re-tighten the split child's box (the split moved entries out).
                children[best].mbr = children[best].node.mbr();
                children.push(split);
                if children.len() > cap {
                    let (a, b) = quadratic_split(std::mem::take(children), |c: &Child<T>| &c.mbr);
                    let mbr_b = mbr_of(&b, |c| &c.mbr);
                    *children = a;
                    return Some(Child {
                        mbr: mbr_b,
                        node: Box::new(Node::Inner(b)),
                    });
                }
            }
            None
        }
    }
}

fn enlargement(node: &Mbr, add: &Mbr) -> (f64, f64) {
    let grown = node.union(add);
    let v = node.volume();
    (grown.volume() - v, v)
}

fn mbr_of<I>(items: &[I], get: impl Fn(&I) -> &Mbr) -> Mbr {
    let mut m = get(&items[0]).clone();
    for it in &items[1..] {
        m.expand(get(it));
    }
    m
}

/// Guttman's quadratic split: pick the pair of slots wasting the most area
/// as seeds, then greedily assign the rest by enlargement preference.
fn quadratic_split<I>(items: Vec<I>, get: impl Fn(&I) -> &Mbr) -> (Vec<I>, Vec<I>) {
    debug_assert!(items.len() >= 2);
    let n = items.len();

    // Seed selection: maximise dead volume of the pair's union.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let u = get(&items[i]).union(get(&items[j]));
            let waste = u.volume() - get(&items[i]).volume() - get(&items[j]).volume();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }

    // `s1 < s2` always hold after seed selection, so the seed boxes can be
    // cloned up front instead of threading `Option`s through the partition.
    let mut mbr_a: Mbr = get(&items[s1]).clone();
    let mut mbr_b: Mbr = get(&items[s2]).clone();
    let mut a: Vec<I> = Vec::with_capacity(n);
    let mut b: Vec<I> = Vec::with_capacity(n);
    let mut rest: Vec<I> = Vec::with_capacity(n);
    for (k, item) in items.into_iter().enumerate() {
        if k == s1 {
            a.push(item);
        } else if k == s2 {
            b.push(item);
        } else {
            rest.push(item);
        }
    }

    for item in rest.into_iter() {
        let ga = mbr_a.union(get(&item)).volume() - mbr_a.volume();
        let gb = mbr_b.union(get(&item)).volume() - mbr_b.volume();
        // Prefer the group with the smaller enlargement; break ties towards
        // the emptier group to keep the split roughly balanced.
        let to_a = match ga.total_cmp(&gb) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => a.len() <= b.len(),
            std::cmp::Ordering::Greater => false,
        };
        if to_a {
            mbr_a.expand(get(&item));
            a.push(item);
        } else {
            mbr_b.expand(get(&item));
            b.push(item);
        }
    }
    (a, b)
}
