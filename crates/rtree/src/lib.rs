//! # osd-rtree
//!
//! In-memory R-tree substrate for the `osd` workspace. The paper's
//! evaluation (§6) indexes data with *n + 1* R-trees: one **global** tree
//! over the objects' MBRs driving the best-first NNC search (Algorithm 1)
//! and one small **local** tree (fan-out 4) per object over its instances,
//! supplying the NN / furthest-neighbour primitives of the instance-level
//! F-SD check and the node partitions of the level-by-level P-SD
//! pruning/validation (§5.1.2).
//!
//! Features:
//! * STR bulk loading ([`RTree::bulk_load`]) and Guttman-style insertion
//!   with quadratic split ([`RTree::insert`]);
//! * range queries (intersection and containment), exact nearest / furthest
//!   neighbour, k-NN, and a generic monotone best-first traversal
//!   ([`RTree::iter_by`]);
//! * read-only node access ([`RTree::root`], [`RTree::level_groups`]) so
//!   higher layers can run their own pruned traversals.
//!
//! ```
//! use osd_geom::{Mbr, Point};
//! use osd_rtree::{Entry, RTree};
//!
//! let entries: Vec<Entry<usize>> = (0..100)
//!     .map(|i| Entry {
//!         mbr: Mbr::from_point(&Point::from([(i % 10) as f64, (i / 10) as f64])),
//!         item: i,
//!     })
//!     .collect();
//! let tree = RTree::bulk_load(8, entries);
//!
//! let q = Point::from([4.2, 4.9]);
//! let (nearest, dist) = tree.nearest(&q).unwrap();
//! assert_eq!(*nearest, 54); // the point (4, 5)
//! assert!(dist < 0.5);
//! let hits = tree.range_intersecting(&Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]));
//! assert_eq!(hits.len(), 4);
//! ```

#![warn(missing_docs)]

mod bulk;
mod delete;
mod insert;
mod node;
mod query;
mod validate;

pub use bulk::str_partition;
pub use node::{point_entries, Child, Entry, Node, RTree};
pub use query::BestFirstIter;
pub use validate::{StructureError, StructureErrorKind};

// Compile-time auto-trait surface: R-trees (global and per-object local)
// are read concurrently by query-engine workers, so the index type must
// stay `Send + Sync` for thread-safe payloads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<RTree<usize>>();
const _: () = _assert_send_sync::<Node<usize>>();
const _: () = _assert_send_sync::<Entry<usize>>();
