//! Structural invariant validation.
//!
//! [`RTree::validate_structure`] audits the three invariants every valid
//! R-tree maintains — recorded MBRs are tight over (and therefore contain)
//! their subtrees, fan-out stays within bounds, and all leaves sit at the
//! same depth — and reports the first violation found. It is always
//! compiled so tests can call it directly; with the `strict-invariants`
//! feature the mutating operations ([`RTree::insert`],
//! [`RTree::remove_item`]) additionally audit the tree after every call
//! via `debug_assert!`.

use crate::node::{Node, RTree};
use osd_geom::Mbr;
use std::fmt;

/// A structural invariant violation, with the path to the offending node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureError {
    /// Child-index path from the root to the offending node.
    pub path: Vec<usize>,
    /// What went wrong.
    pub kind: StructureErrorKind,
}

/// The kinds of structural violation [`RTree::validate_structure`] detects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureErrorKind {
    /// A node has no slots at all (only an empty *tree* is allowed).
    EmptyNode,
    /// A node holds more slots than the configured fan-out.
    Overfull {
        /// Number of slots found.
        found: usize,
        /// Configured maximum fan-out.
        max: usize,
    },
    /// A recorded child MBR is not the tight union of its subtree.
    LooseMbr,
    /// A child's subtree reaches outside the recorded MBR.
    MbrNotContaining,
    /// Two leaves sit at different depths.
    UnbalancedHeight {
        /// Depth of the shallowest leaf.
        min: usize,
        /// Depth of the deepest leaf.
        max: usize,
    },
    /// `len()` disagrees with the number of stored entries.
    LengthMismatch {
        /// What `len()` reports.
        recorded: usize,
        /// Entries actually reachable.
        counted: usize,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at node path {:?}: ", self.path)?;
        match &self.kind {
            StructureErrorKind::EmptyNode => write!(f, "empty node"),
            StructureErrorKind::Overfull { found, max } => {
                write!(f, "node has {found} slots, fan-out max is {max}")
            }
            StructureErrorKind::LooseMbr => {
                write!(f, "recorded MBR is not the tight union of the subtree")
            }
            StructureErrorKind::MbrNotContaining => {
                write!(f, "subtree reaches outside the recorded MBR")
            }
            StructureErrorKind::UnbalancedHeight { min, max } => {
                write!(f, "leaf depths differ: {min} vs {max}")
            }
            StructureErrorKind::LengthMismatch { recorded, counted } => {
                write!(f, "len() says {recorded} but {counted} entries are stored")
            }
        }
    }
}

impl<T> RTree<T> {
    /// Audits the structural invariants: MBR tightness/containment, fan-out
    /// bounds, uniform leaf depth, and the cached length. Returns the first
    /// violation found.
    ///
    /// The root is exempt from the *minimum* fill bound (as in any R-tree)
    /// but not from the maximum.
    pub fn validate_structure(&self) -> Result<(), StructureError> {
        let Some(root) = &self.root else {
            return if self.len == 0 {
                Ok(())
            } else {
                Err(StructureError {
                    path: Vec::new(),
                    kind: StructureErrorKind::LengthMismatch {
                        recorded: self.len,
                        counted: 0,
                    },
                })
            };
        };
        let mut path = Vec::new();
        validate_node(&root.node, &root.mbr, self.max_entries, &mut path)?;
        let counted = root.node.item_count();
        if counted != self.len {
            return Err(StructureError {
                path: Vec::new(),
                kind: StructureErrorKind::LengthMismatch {
                    recorded: self.len,
                    counted,
                },
            });
        }
        let (min_depth, max_depth) = leaf_depths(&root.node, 0);
        if min_depth != max_depth {
            return Err(StructureError {
                path: Vec::new(),
                kind: StructureErrorKind::UnbalancedHeight {
                    min: min_depth,
                    max: max_depth,
                },
            });
        }
        Ok(())
    }
}

/// Recursively checks one node against its recorded bounding box.
fn validate_node<T>(
    node: &Node<T>,
    recorded: &Mbr,
    max_entries: usize,
    path: &mut Vec<usize>,
) -> Result<(), StructureError> {
    let slots = node.slot_count();
    if slots == 0 {
        return Err(StructureError {
            path: path.clone(),
            kind: StructureErrorKind::EmptyNode,
        });
    }
    if slots > max_entries {
        return Err(StructureError {
            path: path.clone(),
            kind: StructureErrorKind::Overfull {
                found: slots,
                max: max_entries,
            },
        });
    }
    let tight = node.mbr();
    if !recorded.contains(&tight) {
        return Err(StructureError {
            path: path.clone(),
            kind: StructureErrorKind::MbrNotContaining,
        });
    }
    if !tight.contains(recorded) {
        // `recorded` strictly exceeds the tight union somewhere.
        return Err(StructureError {
            path: path.clone(),
            kind: StructureErrorKind::LooseMbr,
        });
    }
    if let Node::Inner(children) = node {
        for (i, c) in children.iter().enumerate() {
            path.push(i);
            validate_node(&c.node, &c.mbr, max_entries, path)?;
            path.pop();
        }
    }
    Ok(())
}

/// `(shallowest, deepest)` leaf depth below `node`.
fn leaf_depths<T>(node: &Node<T>, depth: usize) -> (usize, usize) {
    match node {
        Node::Leaf(_) => (depth, depth),
        Node::Inner(children) => {
            let mut lo = usize::MAX;
            let mut hi = 0;
            for c in children {
                let (clo, chi) = leaf_depths(&c.node, depth + 1);
                lo = lo.min(clo);
                hi = hi.max(chi);
            }
            (lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Child, Entry};
    use osd_geom::Point;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn entries(n: usize) -> Vec<Entry<usize>> {
        (0..n)
            .map(|i| Entry {
                mbr: Mbr::from_point(&pt((i % 13) as f64, (i / 13) as f64)),
                item: i,
            })
            .collect()
    }

    #[test]
    fn bulk_loaded_tree_is_valid() {
        for n in [0usize, 1, 5, 40, 200] {
            let t = RTree::bulk_load(6, entries(n));
            assert!(t.validate_structure().is_ok(), "n = {n}");
        }
    }

    #[test]
    fn incrementally_built_tree_is_valid() {
        let mut t = RTree::new(4);
        for e in entries(120) {
            t.insert(e.mbr, e.item);
        }
        assert!(t.validate_structure().is_ok());
    }

    #[test]
    fn tree_stays_valid_under_deletions() {
        let mut t = RTree::bulk_load(4, entries(60));
        for i in 0..60usize {
            let target = Mbr::from_point(&pt((i % 13) as f64, (i / 13) as f64));
            assert_eq!(t.remove_item(&target, |&x| x == i), Some(i));
            assert!(t.validate_structure().is_ok(), "after removing {i}");
        }
    }

    #[test]
    fn detects_loose_root_mbr() {
        let mut t = RTree::bulk_load(4, entries(10));
        if let Some(root) = t.root.as_mut() {
            root.mbr.expand(&Mbr::from_point(&pt(500.0, 500.0)));
        }
        assert_eq!(
            t.validate_structure().map_err(|e| e.kind),
            Err(StructureErrorKind::LooseMbr)
        );
    }

    #[test]
    fn detects_non_containing_mbr() {
        let mut t = RTree::bulk_load(4, entries(10));
        if let Some(root) = t.root.as_mut() {
            root.mbr = Mbr::from_point(&pt(0.0, 0.0));
        }
        assert_eq!(
            t.validate_structure().map_err(|e| e.kind),
            Err(StructureErrorKind::MbrNotContaining)
        );
    }

    #[test]
    fn detects_length_mismatch() {
        let mut t = RTree::bulk_load(4, entries(10));
        t.len = 11;
        assert!(matches!(
            t.validate_structure().map_err(|e| e.kind),
            Err(StructureErrorKind::LengthMismatch {
                recorded: 11,
                counted: 10
            })
        ));
    }

    #[test]
    fn detects_unbalanced_tree() {
        // Hand-build an unbalanced inner node: one leaf child and one
        // two-level child.
        let leaf = |i: usize| Child {
            mbr: Mbr::from_point(&pt(i as f64, 0.0)),
            node: Box::new(Node::Leaf(vec![Entry {
                mbr: Mbr::from_point(&pt(i as f64, 0.0)),
                item: i,
            }])),
        };
        let deep = Child {
            mbr: Mbr::from_point(&pt(1.0, 0.0)),
            node: Box::new(Node::Inner(vec![leaf(1)])),
        };
        let root_node = Node::Inner(vec![leaf(0), deep]);
        let t = RTree {
            root: Some(Child {
                mbr: root_node.mbr(),
                node: Box::new(root_node),
            }),
            max_entries: 4,
            len: 2,
        };
        assert!(matches!(
            t.validate_structure().map_err(|e| e.kind),
            Err(StructureErrorKind::UnbalancedHeight { min: 1, max: 2 })
        ));
    }

    #[test]
    fn detects_overfull_node() {
        let es = entries(9);
        let t = RTree {
            root: Some(Child {
                mbr: Node::Leaf(es.clone()).mbr(),
                node: Box::new(Node::Leaf(es)),
            }),
            max_entries: 4,
            len: 9,
        };
        assert!(matches!(
            t.validate_structure().map_err(|e| e.kind),
            Err(StructureErrorKind::Overfull { found: 9, max: 4 })
        ));
    }
}
