//! Entry deletion with Guttman-style tree condensation.
//!
//! Underfull nodes (below half fan-out) are dissolved and their entries
//! reinserted; a root left with a single child is collapsed.

use crate::node::{Entry, Node, RTree};
use osd_geom::Mbr;

impl<T> RTree<T> {
    /// Removes one entry whose MBR intersects `mbr` and whose item matches
    /// `pred`, returning it. The tree is condensed afterwards: underfull
    /// nodes are dissolved and their entries reinserted.
    pub fn remove_item(&mut self, mbr: &Mbr, pred: impl Fn(&T) -> bool) -> Option<T> {
        let min_fill = (self.max_entries / 2).max(1);
        let mut root = self.root.take()?;
        let mut orphans: Vec<Entry<T>> = Vec::new();
        let removed = remove_rec(&mut root.node, mbr, &pred, min_fill, &mut orphans);
        if removed.is_none() {
            debug_assert!(orphans.is_empty());
            self.root = Some(root);
            return None;
        }
        self.len -= 1;

        // Re-tighten or drop the root.
        if root.node.slot_count() == 0 {
            self.root = None;
        } else {
            // Collapse chains of single-child inner nodes.
            while let Node::Inner(cs) = root.node.as_mut() {
                if cs.len() != 1 {
                    break;
                }
                let Some(only) = cs.pop() else { break };
                root = only;
            }
            root.mbr = root.node.mbr();
            self.root = Some(root);
        }

        // Reinsert orphaned entries (len was adjusted once for the removal;
        // insert() will re-count the orphans, so pre-subtract them).
        self.len -= orphans.len();
        for e in orphans {
            self.insert(e.mbr, e.item);
        }
        #[cfg(feature = "strict-invariants")]
        if let Err(e) = self.validate_structure() {
            debug_assert!(false, "R-tree invariant broken after removal: {e}");
        }
        removed
    }
}

/// Removes a matching entry below `node`; underfull descendants are
/// dissolved into `orphans`. Returns the removed item.
fn remove_rec<T>(
    node: &mut Node<T>,
    mbr: &Mbr,
    pred: &impl Fn(&T) -> bool,
    min_fill: usize,
    orphans: &mut Vec<Entry<T>>,
) -> Option<T> {
    match node {
        Node::Leaf(entries) => {
            let idx = entries
                .iter()
                .position(|e| e.mbr.intersects(mbr) && pred(&e.item))?;
            Some(entries.remove(idx).item)
        }
        Node::Inner(children) => {
            let mut removed = None;
            let mut hit_child = None;
            for (i, c) in children.iter_mut().enumerate() {
                if c.mbr.intersects(mbr) {
                    if let Some(item) = remove_rec(&mut c.node, mbr, pred, min_fill, orphans) {
                        removed = Some(item);
                        hit_child = Some(i);
                        break;
                    }
                }
            }
            let i = hit_child?;
            if children[i].node.slot_count() < min_fill {
                // Dissolve the underfull child: all its remaining entries
                // become orphans to reinsert.
                let child = children.remove(i);
                collect_entries(*child.node, orphans);
            } else {
                children[i].mbr = children[i].node.mbr();
            }
            removed
        }
    }
}

fn collect_entries<T>(node: Node<T>, out: &mut Vec<Entry<T>>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner(children) => {
            for c in children {
                collect_entries(*c.node, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn build(points: &[(f64, f64)], fanout: usize) -> RTree<usize> {
        let entries: Vec<Entry<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Entry {
                mbr: Mbr::from_point(&pt(x, y)),
                item: i,
            })
            .collect();
        RTree::bulk_load(fanout, entries)
    }

    #[test]
    fn remove_and_query() {
        let pts: Vec<(f64, f64)> = (0..40).map(|i| ((i % 8) as f64, (i / 8) as f64)).collect();
        let mut t = build(&pts, 4);
        let target = Mbr::from_point(&pt(3.0, 2.0)); // item 19
        let removed = t.remove_item(&target, |&i| i == 19);
        assert_eq!(removed, Some(19));
        assert_eq!(t.len(), 39);
        let hits: Vec<usize> = t.range_intersecting(&target).into_iter().copied().collect();
        assert!(!hits.contains(&19));
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t = build(&[(0.0, 0.0), (1.0, 1.0)], 4);
        let missing = Mbr::from_point(&pt(9.0, 9.0));
        assert_eq!(t.remove_item(&missing, |_| true), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_everything() {
        let pts: Vec<(f64, f64)> = (0..25).map(|i| (i as f64, (i * 3 % 7) as f64)).collect();
        let mut t = build(&pts, 3);
        for (i, &(x, y)) in pts.iter().enumerate() {
            let target = Mbr::from_point(&pt(x, y));
            assert_eq!(t.remove_item(&target, |&x| x == i), Some(i), "removing {i}");
            assert_eq!(t.len(), 25 - i - 1);
            // Remaining queries stay consistent with a scan.
            let all: Vec<usize> = t.items().into_iter().copied().collect();
            assert_eq!(all.len(), t.len());
            assert!(!all.contains(&i));
        }
        assert!(t.is_empty());
        assert!(t.root().is_none());
    }

    #[test]
    fn nearest_still_exact_after_removals() {
        let pts: Vec<(f64, f64)> = (0..60)
            .map(|i| (((i * 37) % 101) as f64, ((i * 61) % 97) as f64))
            .collect();
        let mut t = build(&pts, 4);
        let mut alive: Vec<usize> = (0..60).collect();
        for k in [5usize, 17, 33, 42, 58, 0, 12] {
            let target = Mbr::from_point(&pt(pts[k].0, pts[k].1));
            assert_eq!(t.remove_item(&target, |&x| x == k), Some(k));
            alive.retain(|&x| x != k);
            let q = pt(50.0, 50.0);
            let (got, d) = t.nearest(&q).unwrap();
            let want = alive
                .iter()
                .map(|&i| q.dist(&pt(pts[i].0, pts[i].1)))
                .fold(f64::INFINITY, f64::min);
            assert!((d - want).abs() < 1e-9, "nearest broken after removing {k}");
            assert!(alive.contains(got));
        }
    }
}
