//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` rectangles into `⌈n / M⌉` leaves by recursively slicing the
//! data into vertical "slabs" along successive dimensions, then builds upper
//! levels by packing the resulting node MBRs the same way. The result is a
//! balanced tree with near-100 % node utilisation — the standard choice for
//! static experiment datasets.

use crate::node::{Child, Entry, Node, RTree};
use osd_geom::Mbr;

impl<T> RTree<T> {
    /// Builds a tree from `entries` using STR packing.
    ///
    /// # Panics
    /// Panics if `max_entries < 2`.
    pub fn bulk_load(max_entries: usize, entries: Vec<Entry<T>>) -> Self {
        let mut tree = RTree::new(max_entries);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();
        let dim = entries[0].mbr.dim();

        // Pack entries into leaves.
        let mut level: Vec<Child<T>> = pack(entries, max_entries, dim, |group| {
            let mbr = group
                .iter()
                .skip(1)
                .fold(group[0].mbr.clone(), |mut acc, e| {
                    acc.expand(&e.mbr);
                    acc
                });
            Child {
                mbr,
                node: Box::new(Node::Leaf(group)),
            }
        });

        // Pack node levels until a single root remains.
        while level.len() > 1 {
            level = pack(level, max_entries, dim, |group| {
                let mbr = group
                    .iter()
                    .skip(1)
                    .fold(group[0].mbr.clone(), |mut acc, c| {
                        acc.expand(&c.mbr);
                        acc
                    });
                Child {
                    mbr,
                    node: Box::new(Node::Inner(group)),
                }
            });
        }
        tree.root = level.pop();
        tree
    }
}

impl RTree<usize> {
    /// Builds a tree over a row-major coordinate block: one degenerate
    /// (point) rectangle per `dim`-sized row, with the row index as payload.
    ///
    /// This is the zero-copy companion of [`RTree::bulk_load`] for flat
    /// instance stores — entries are materialised straight from the borrowed
    /// slice, with no intermediate owned point set. The produced tree is
    /// identical to bulk-loading `Entry { mbr: Mbr::from_point(row_i), item: i }`.
    ///
    /// # Panics
    /// Panics if `max_entries < 2`, `dim` is zero, or `rows.len()` is not a
    /// multiple of `dim`.
    pub fn bulk_load_rows(max_entries: usize, dim: usize, rows: &[f64]) -> Self {
        assert!(dim > 0, "rows need at least one dimension");
        assert_eq!(
            rows.len() % dim,
            0,
            "row block length must be a multiple of dim"
        );
        let entries: Vec<Entry<usize>> = rows
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| Entry {
                mbr: Mbr::new(row, row),
                item: i,
            })
            .collect();
        RTree::bulk_load(max_entries, entries)
    }
}

/// Trait unifying the two packable kinds (leaf entries and children).
trait HasMbr {
    fn mbr_ref(&self) -> &Mbr;
}
impl<T> HasMbr for Entry<T> {
    fn mbr_ref(&self) -> &Mbr {
        &self.mbr
    }
}
impl<T> HasMbr for Child<T> {
    fn mbr_ref(&self) -> &Mbr {
        &self.mbr
    }
}

/// Packs `items` into groups of at most `cap`, returning one built node per
/// group via `build`.
fn pack<I: HasMbr, O>(
    items: Vec<I>,
    cap: usize,
    dim: usize,
    build: impl Fn(Vec<I>) -> O,
) -> Vec<O> {
    let mut out = Vec::with_capacity(items.len().div_ceil(cap));
    tile(items, cap, dim, 0, &build, &mut out);
    out
}

/// Recursive STR tiling: sort by the centre of dimension `d`, cut into
/// `⌈P^(1/(dim−d))⌉` slabs, recurse on the next dimension.
fn tile<I: HasMbr, O>(
    mut items: Vec<I>,
    cap: usize,
    dim: usize,
    d: usize,
    build: &impl Fn(Vec<I>) -> O,
    out: &mut Vec<O>,
) {
    if items.len() <= cap {
        out.push(build(items));
        return;
    }
    if d + 1 == dim {
        // Last dimension: emit consecutive runs of `cap`.
        sort_by_center(&mut items, d);
        let mut rest = items;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(cap));
            out.push(build(rest));
            rest = tail;
        }
        return;
    }
    sort_by_center(&mut items, d);
    let pages = items.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / (dim - d) as f64).ceil() as usize;
    let per_slab = items.len().div_ceil(slabs.max(1));
    let mut rest = items;
    while !rest.is_empty() {
        let tail = rest.split_off(rest.len().min(per_slab));
        tile(rest, cap, dim, d + 1, build, out);
        rest = tail;
    }
}

/// An index tagged with a borrowed rectangle, so the STR tiler can slice
/// arbitrary MBR collections without owning them.
struct Tagged<'a> {
    mbr: &'a Mbr,
    idx: usize,
}
impl HasMbr for Tagged<'_> {
    fn mbr_ref(&self) -> &Mbr {
        self.mbr
    }
}

/// Space-partitions `mbrs` into roughly `parts` spatially coherent tiles
/// using the same Sort-Tile-Recursive slicing as [`RTree::bulk_load`], and
/// returns the member indices of each tile in tiling order.
///
/// This is STR applied one level up: instead of packing rectangles into
/// tree leaves, it packs them into *shards* — each returned group is a
/// contiguous run of the STR ordering with at most `⌈n / parts⌉` members,
/// so shard extents overlap as little as the data allows. Slab rounding
/// can produce slightly more than `parts` groups; callers should treat the
/// returned length as the actual shard count.
///
/// `parts <= 1` returns a single group in the **original** index order
/// (no re-sorting), so a one-shard partition is layout-identical to the
/// unpartitioned input. Empty input returns no groups.
pub fn str_partition(mbrs: &[Mbr], parts: usize) -> Vec<Vec<usize>> {
    if mbrs.is_empty() {
        return Vec::new();
    }
    if parts <= 1 {
        return vec![(0..mbrs.len()).collect()];
    }
    let dim = mbrs[0].dim();
    let cap = mbrs.len().div_ceil(parts).max(1);
    let items: Vec<Tagged<'_>> = mbrs
        .iter()
        .enumerate()
        .map(|(idx, mbr)| Tagged { mbr, idx })
        .collect();
    pack(items, cap, dim, |group| {
        group.into_iter().map(|t| t.idx).collect()
    })
}

fn sort_by_center<I: HasMbr>(items: &mut [I], d: usize) {
    items.sort_by(|a, b| {
        let ca = a.mbr_ref().lo()[d] + a.mbr_ref().hi()[d];
        let cb = b.mbr_ref().lo()[d] + b.mbr_ref().hi()[d];
        ca.total_cmp(&cb)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use osd_geom::Point;

    #[test]
    fn bulk_load_rows_matches_point_entry_bulk_load() {
        let rows: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin() * 50.0).collect();
        let dim = 3;
        let from_rows = RTree::bulk_load_rows(4, dim, &rows);
        let entries: Vec<Entry<usize>> = rows
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| Entry {
                mbr: Mbr::from_point(&Point::new(row.to_vec())),
                item: i,
            })
            .collect();
        let from_points = RTree::bulk_load(4, entries);
        assert_eq!(from_rows.len(), from_points.len());
        assert_eq!(from_rows.height(), from_points.height());
        assert_eq!(from_rows.mbr(), from_points.mbr());
        assert!(from_rows.validate_structure().is_ok());
        let probe = Point::new(vec![0.1, -0.2, 0.3]);
        assert_eq!(from_rows.nearest(&probe), from_points.nearest(&probe));
    }

    #[test]
    fn bulk_load_rows_empty_is_fine() {
        let t = RTree::bulk_load_rows(4, 2, &[]);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bulk_load_rows_ragged_rejected() {
        let _ = RTree::bulk_load_rows(4, 2, &[1.0, 2.0, 3.0]);
    }

    fn grid_mbrs(n: usize) -> Vec<Mbr> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                Mbr::new(vec![x, y], vec![x + 0.5, y + 0.5])
            })
            .collect()
    }

    #[test]
    fn str_partition_covers_every_index_exactly_once() {
        let mbrs = grid_mbrs(97);
        for parts in [2, 3, 7, 16] {
            let groups = str_partition(&mbrs, parts);
            let cap = mbrs.len().div_ceil(parts);
            let mut seen = vec![false; mbrs.len()];
            for g in &groups {
                assert!(!g.is_empty(), "no empty shard");
                assert!(g.len() <= cap, "group of {} exceeds cap {cap}", g.len());
                for &i in g {
                    assert!(!seen[i], "index {i} assigned twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "partition must be exhaustive");
            assert!(groups.len() >= parts.min(mbrs.len()));
        }
    }

    #[test]
    fn str_partition_single_part_preserves_input_order() {
        let mbrs = grid_mbrs(23);
        let groups = str_partition(&mbrs, 1);
        assert_eq!(groups, vec![(0..23).collect::<Vec<_>>()]);
        let groups = str_partition(&mbrs, 0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn str_partition_more_parts_than_items_yields_singletons() {
        let mbrs = grid_mbrs(5);
        let groups = str_partition(&mbrs, 64);
        assert_eq!(groups.len(), 5);
        assert!(groups.iter().all(|g| g.len() == 1));
        assert!(str_partition(&[], 4).is_empty());
    }

    #[test]
    fn str_partition_groups_are_spatially_coherent() {
        // A cluster at the origin and one far away: with 2 parts, STR must
        // not mix members of the two clusters in one shard.
        let mut mbrs = Vec::new();
        for i in 0..8 {
            let x = (i % 4) as f64;
            mbrs.push(Mbr::new(vec![x, 0.0], vec![x, 0.0]));
        }
        for i in 0..8 {
            let x = 100.0 + (i % 4) as f64;
            mbrs.push(Mbr::new(vec![x, 0.0], vec![x, 0.0]));
        }
        let groups = str_partition(&mbrs, 2);
        assert_eq!(groups.len(), 2);
        for g in &groups {
            let near = g.iter().all(|&i| i < 8);
            let far = g.iter().all(|&i| i >= 8);
            assert!(near || far, "shard mixes clusters: {g:?}");
        }
    }
}
