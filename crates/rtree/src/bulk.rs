//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` rectangles into `⌈n / M⌉` leaves by recursively slicing the
//! data into vertical "slabs" along successive dimensions, then builds upper
//! levels by packing the resulting node MBRs the same way. The result is a
//! balanced tree with near-100 % node utilisation — the standard choice for
//! static experiment datasets.

use crate::node::{Child, Entry, Node, RTree};
use osd_geom::Mbr;

impl<T> RTree<T> {
    /// Builds a tree from `entries` using STR packing.
    ///
    /// # Panics
    /// Panics if `max_entries < 2`.
    pub fn bulk_load(max_entries: usize, entries: Vec<Entry<T>>) -> Self {
        let mut tree = RTree::new(max_entries);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();
        let dim = entries[0].mbr.dim();

        // Pack entries into leaves.
        let mut level: Vec<Child<T>> = pack(entries, max_entries, dim, |group| {
            let mbr = group
                .iter()
                .skip(1)
                .fold(group[0].mbr.clone(), |mut acc, e| {
                    acc.expand(&e.mbr);
                    acc
                });
            Child {
                mbr,
                node: Box::new(Node::Leaf(group)),
            }
        });

        // Pack node levels until a single root remains.
        while level.len() > 1 {
            level = pack(level, max_entries, dim, |group| {
                let mbr = group
                    .iter()
                    .skip(1)
                    .fold(group[0].mbr.clone(), |mut acc, c| {
                        acc.expand(&c.mbr);
                        acc
                    });
                Child {
                    mbr,
                    node: Box::new(Node::Inner(group)),
                }
            });
        }
        tree.root = level.pop();
        tree
    }
}

/// Trait unifying the two packable kinds (leaf entries and children).
trait HasMbr {
    fn mbr_ref(&self) -> &Mbr;
}
impl<T> HasMbr for Entry<T> {
    fn mbr_ref(&self) -> &Mbr {
        &self.mbr
    }
}
impl<T> HasMbr for Child<T> {
    fn mbr_ref(&self) -> &Mbr {
        &self.mbr
    }
}

/// Packs `items` into groups of at most `cap`, returning one built node per
/// group via `build`.
fn pack<I: HasMbr, O>(
    items: Vec<I>,
    cap: usize,
    dim: usize,
    build: impl Fn(Vec<I>) -> O,
) -> Vec<O> {
    let mut out = Vec::with_capacity(items.len().div_ceil(cap));
    tile(items, cap, dim, 0, &build, &mut out);
    out
}

/// Recursive STR tiling: sort by the centre of dimension `d`, cut into
/// `⌈P^(1/(dim−d))⌉` slabs, recurse on the next dimension.
fn tile<I: HasMbr, O>(
    mut items: Vec<I>,
    cap: usize,
    dim: usize,
    d: usize,
    build: &impl Fn(Vec<I>) -> O,
    out: &mut Vec<O>,
) {
    if items.len() <= cap {
        out.push(build(items));
        return;
    }
    if d + 1 == dim {
        // Last dimension: emit consecutive runs of `cap`.
        sort_by_center(&mut items, d);
        let mut rest = items;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(cap));
            out.push(build(rest));
            rest = tail;
        }
        return;
    }
    sort_by_center(&mut items, d);
    let pages = items.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / (dim - d) as f64).ceil() as usize;
    let per_slab = items.len().div_ceil(slabs.max(1));
    let mut rest = items;
    while !rest.is_empty() {
        let tail = rest.split_off(rest.len().min(per_slab));
        tile(rest, cap, dim, d + 1, build, out);
        rest = tail;
    }
}

fn sort_by_center<I: HasMbr>(items: &mut [I], d: usize) {
    items.sort_by(|a, b| {
        let ca = a.mbr_ref().lo()[d] + a.mbr_ref().hi()[d];
        let cb = b.mbr_ref().lo()[d] + b.mbr_ref().hi()[d];
        ca.total_cmp(&cb)
    });
}
