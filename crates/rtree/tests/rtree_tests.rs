//! R-tree correctness tests: structural invariants plus query results
//! cross-checked against linear scans.

use osd_geom::{Mbr, Point};
use osd_rtree::{Entry, Node, RTree};
use proptest::prelude::*;

fn pt(x: f64, y: f64) -> Point {
    Point::new(vec![x, y])
}

fn point_tree(points: &[(f64, f64)], fanout: usize) -> RTree<usize> {
    let entries: Vec<Entry<usize>> = points
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| Entry {
            mbr: Mbr::from_point(&pt(x, y)),
            item: i,
        })
        .collect();
    RTree::bulk_load(fanout, entries)
}

/// Checks that every node's stored MBR tightly bounds its subtree and that
/// fan-out limits hold.
fn check_invariants<T>(tree: &RTree<T>) {
    fn walk<T>(node: &Node<T>, cap: usize, depth: usize, leaf_depths: &mut Vec<usize>) {
        assert!(node.slot_count() <= cap, "node over capacity");
        assert!(node.slot_count() >= 1, "empty node in tree");
        match node {
            Node::Leaf(_) => leaf_depths.push(depth),
            Node::Inner(cs) => {
                for c in cs {
                    assert_eq!(c.mbr, c.node.mbr(), "stale child MBR");
                    walk(&c.node, cap, depth + 1, leaf_depths);
                }
            }
        }
    }
    if let Some(root) = tree.root() {
        let mut depths = Vec::new();
        walk(root, tree.max_entries(), 0, &mut depths);
        let d0 = depths[0];
        assert!(
            depths.iter().all(|&d| d == d0),
            "leaves at unequal depths: {depths:?}"
        );
    }
}

#[test]
fn empty_tree() {
    let t: RTree<usize> = RTree::new(4);
    assert!(t.is_empty());
    assert!(t.root().is_none());
    assert!(t.nearest(&pt(0.0, 0.0)).is_none());
    assert!(t
        .range_intersecting(&Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]))
        .is_empty());
}

#[test]
fn bulk_load_structure() {
    let pts: Vec<(f64, f64)> = (0..100)
        .map(|i| ((i % 10) as f64, (i / 10) as f64))
        .collect();
    let t = point_tree(&pts, 4);
    assert_eq!(t.len(), 100);
    check_invariants(&t);
    let mut items: Vec<usize> = t.items().into_iter().copied().collect();
    items.sort_unstable();
    assert_eq!(items, (0..100).collect::<Vec<_>>());
}

#[test]
fn insert_structure() {
    let mut t: RTree<usize> = RTree::new(4);
    for i in 0..200usize {
        let x = ((i * 37) % 101) as f64;
        let y = ((i * 61) % 97) as f64;
        t.insert(Mbr::from_point(&pt(x, y)), i);
        check_invariants(&t);
    }
    assert_eq!(t.len(), 200);
}

#[test]
fn nearest_matches_scan_small() {
    let pts = vec![(0.0, 0.0), (5.0, 5.0), (2.0, 1.0), (9.0, 3.0)];
    let t = point_tree(&pts, 2);
    let q = pt(3.0, 2.0);
    let (idx, d) = t.nearest(&q).unwrap();
    assert_eq!(*idx, 2);
    assert!((d - q.dist(&pt(2.0, 1.0))).abs() < 1e-12);
}

#[test]
fn furthest_matches_scan_small() {
    let pts = vec![(0.0, 0.0), (5.0, 5.0), (2.0, 1.0), (9.0, 3.0)];
    let t = point_tree(&pts, 2);
    let q = pt(0.0, 0.0);
    let (idx, d) = t.furthest(&q).unwrap();
    assert_eq!(*idx, 3);
    assert!((d - q.dist(&pt(9.0, 3.0))).abs() < 1e-12);
}

#[test]
fn k_nearest_ordering() {
    let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 0.0)).collect();
    let t = point_tree(&pts, 4);
    let got = t.k_nearest(&pt(10.2, 0.0), 5);
    let idxs: Vec<usize> = got.iter().map(|(i, _)| **i).collect();
    assert_eq!(idxs, vec![10, 11, 9, 12, 8]);
    for w in got.windows(2) {
        assert!(w[0].1 <= w[1].1, "k-NN distances not sorted");
    }
}

#[test]
fn level_groups_partition_items() {
    let pts: Vec<(f64, f64)> = (0..64).map(|i| ((i % 8) as f64, (i / 8) as f64)).collect();
    let t = point_tree(&pts, 4);
    for level in 0..=t.height().unwrap() + 1 {
        let groups = t.level_groups(level);
        let mut all: Vec<usize> = groups
            .iter()
            .flat_map(|(_, items)| items.iter().map(|i| **i))
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..64).collect::<Vec<_>>(),
            "level {level} not a partition"
        );
        // Every group MBR must contain its items.
        for (mbr, items) in &groups {
            for &&i in items {
                assert!(mbr.contains_point(&pt(pts[i].0, pts[i].1)));
            }
        }
    }
}

#[test]
fn contained_vs_intersecting() {
    // Boxes (not points): containment is strictly stronger.
    let entries = vec![
        Entry {
            mbr: Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]),
            item: 0usize,
        },
        Entry {
            mbr: Mbr::new(vec![1.0, 1.0], vec![5.0, 5.0]),
            item: 1,
        },
        Entry {
            mbr: Mbr::new(vec![6.0, 6.0], vec![7.0, 7.0]),
            item: 2,
        },
    ];
    let t = RTree::bulk_load(4, entries);
    let q = Mbr::new(vec![0.0, 0.0], vec![3.0, 3.0]);
    let mut inter: Vec<usize> = t.range_intersecting(&q).into_iter().copied().collect();
    inter.sort_unstable();
    assert_eq!(inter, vec![0, 1]);
    let cont: Vec<usize> = t.range_contained(&q).into_iter().copied().collect();
    assert_eq!(cont, vec![0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_range_query_matches_scan(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..200),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0,
        w in 0.0f64..50.0, h in 0.0f64..50.0,
        fanout in 2usize..9,
    ) {
        let t = point_tree(&pts, fanout);
        check_invariants(&t);
        let q = Mbr::new(vec![qx, qy], vec![qx + w, qy + h]);
        let mut got: Vec<usize> = t.range_intersecting(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts.iter().enumerate()
            .filter(|(_, &(x, y))| q.contains_point(&pt(x, y)))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prop_nearest_furthest_match_scan(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150),
        qx in -20.0f64..120.0, qy in -20.0f64..120.0,
    ) {
        let t = point_tree(&pts, 4);
        let q = pt(qx, qy);
        let (_, dn) = t.nearest(&q).unwrap();
        let want_n = pts.iter().map(|&(x, y)| q.dist(&pt(x, y))).fold(f64::INFINITY, f64::min);
        prop_assert!((dn - want_n).abs() < 1e-9);
        let (_, df) = t.furthest(&q).unwrap();
        let want_f = pts.iter().map(|&(x, y)| q.dist(&pt(x, y))).fold(0.0, f64::max);
        prop_assert!((df - want_f).abs() < 1e-9);
    }

    #[test]
    fn prop_insert_matches_bulk_queries(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..120),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0,
    ) {
        let bulk = point_tree(&pts, 4);
        let mut inc: RTree<usize> = RTree::new(4);
        for (i, &(x, y)) in pts.iter().enumerate() {
            inc.insert(Mbr::from_point(&pt(x, y)), i);
        }
        check_invariants(&inc);
        prop_assert_eq!(bulk.len(), inc.len());
        let q = pt(qx, qy);
        let dn_bulk = bulk.nearest(&q).unwrap().1;
        let dn_inc = inc.nearest(&q).unwrap().1;
        prop_assert!((dn_bulk - dn_inc).abs() < 1e-9);
    }

    #[test]
    fn prop_best_first_is_sorted(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0,
    ) {
        let t = point_tree(&pts, 4);
        let q = pt(qx, qy);
        let keys: Vec<f64> = t.iter_by(|m| m.min_dist2_point(&q)).map(|(_, k)| k).collect();
        prop_assert_eq!(keys.len(), pts.len());
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "best-first out of order");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Range queries over *box* (non-point) entries match a linear scan,
    /// for both intersection and containment semantics.
    #[test]
    fn prop_box_entries_match_scan(
        boxes in prop::collection::vec((0.0f64..90.0, 0.0f64..90.0, 0.0f64..10.0, 0.0f64..10.0), 1..120),
        qx in 0.0f64..90.0, qy in 0.0f64..90.0, qw in 0.0f64..40.0, qh in 0.0f64..40.0,
        fanout in 2usize..7,
    ) {
        let mbrs: Vec<Mbr> = boxes.iter()
            .map(|&(x, y, w, h)| Mbr::new(vec![x, y], vec![x + w, y + h]))
            .collect();
        let entries: Vec<Entry<usize>> = mbrs.iter().enumerate()
            .map(|(i, m)| Entry { mbr: m.clone(), item: i })
            .collect();
        let t = RTree::bulk_load(fanout, entries);
        let q = Mbr::new(vec![qx, qy], vec![qx + qw, qy + qh]);
        let mut inter: Vec<usize> = t.range_intersecting(&q).into_iter().copied().collect();
        inter.sort_unstable();
        let mut want_i: Vec<usize> = mbrs.iter().enumerate()
            .filter(|(_, m)| m.intersects(&q)).map(|(i, _)| i).collect();
        want_i.sort_unstable();
        prop_assert_eq!(inter, want_i);
        let mut cont: Vec<usize> = t.range_contained(&q).into_iter().copied().collect();
        cont.sort_unstable();
        let mut want_c: Vec<usize> = mbrs.iter().enumerate()
            .filter(|(_, m)| q.contains(m)).map(|(i, _)| i).collect();
        want_c.sort_unstable();
        prop_assert_eq!(cont, want_c);
    }

    /// Deleting a random subset leaves a consistent tree: the surviving
    /// items are exactly the complement, the length is right, and nearest
    /// queries stay exact.
    #[test]
    fn prop_delete_subset_consistent(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..80),
        picks in prop::collection::vec(prop::bool::ANY, 2..80),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0,
    ) {
        let mut t = point_tree(&pts, 4);
        let mut alive: Vec<usize> = (0..pts.len()).collect();
        for (i, &remove) in picks.iter().enumerate().take(pts.len()) {
            if remove && alive.len() > 1 {
                let target = Mbr::from_point(&pt(pts[i].0, pts[i].1));
                prop_assert_eq!(t.remove_item(&target, |&x| x == i), Some(i));
                alive.retain(|&x| x != i);
            }
        }
        prop_assert_eq!(t.len(), alive.len());
        let mut got: Vec<usize> = t.items().into_iter().copied().collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &alive);
        let q = pt(qx, qy);
        let (_, d) = t.nearest(&q).unwrap();
        let want = alive.iter().map(|&i| q.dist(&pt(pts[i].0, pts[i].1)))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - want).abs() < 1e-9);
    }
}
