//! Property tests for `RTree::remove_item` condensation: random remove
//! sequences must leave a tree that is structurally valid and
//! query-equivalent to a tree bulk-rebuilt from the survivors.
//!
//! Run with `--features strict-invariants` to additionally audit the tree
//! after every internal mutation step (the delete path self-validates).

use osd_geom::{Mbr, Point};
use osd_rtree::{Entry, RTree};
use proptest::prelude::*;

fn pt(x: f64, y: f64) -> Point {
    Point::new(vec![x, y])
}

fn point_tree(points: &[(f64, f64)], fanout: usize) -> RTree<usize> {
    let entries: Vec<Entry<usize>> = points
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| Entry {
            mbr: Mbr::from_point(&pt(x, y)),
            item: i,
        })
        .collect();
    RTree::bulk_load(fanout, entries)
}

fn survivor_tree(points: &[(f64, f64)], alive: &[usize], fanout: usize) -> RTree<usize> {
    let entries: Vec<Entry<usize>> = alive
        .iter()
        .map(|&i| Entry {
            mbr: Mbr::from_point(&pt(points[i].0, points[i].1)),
            item: i,
        })
        .collect();
    RTree::bulk_load(fanout, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every removal of a random sequence, the tree validates and
    /// answers nearest/min-dist queries identically to a tree bulk-rebuilt
    /// from the surviving items.
    #[test]
    fn prop_remove_sequence_matches_bulk_rebuild(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..60),
        order in prop::collection::vec(0usize..1000, 1..60),
        qx in -10.0f64..110.0, qy in -10.0f64..110.0,
        fanout in 2usize..7,
    ) {
        let mut t = point_tree(&pts, fanout);
        let mut alive: Vec<usize> = (0..pts.len()).collect();
        let q = pt(qx, qy);
        for &pick in &order {
            if alive.len() <= 1 {
                break;
            }
            let victim = alive[pick % alive.len()];
            let target = Mbr::from_point(&pt(pts[victim].0, pts[victim].1));
            prop_assert_eq!(t.remove_item(&target, |&x| x == victim), Some(victim));
            alive.retain(|&x| x != victim);

            t.validate_structure().map_err(|e| {
                TestCaseError::fail(format!("invalid after removing {victim}: {e}"))
            })?;
            let rebuilt = survivor_tree(&pts, &alive, fanout);
            prop_assert_eq!(t.len(), rebuilt.len());

            let mut got: Vec<usize> = t.items().into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = rebuilt.items().into_iter().copied().collect();
            want.sort_unstable();
            prop_assert_eq!(&got, &want, "item sets diverge after removing {}", victim);

            // Query equivalence: the condensed tree and the rebuilt tree
            // agree exactly on nearest distances (both are exact searches
            // over the same point set).
            let dn = t.nearest(&q).map(|(_, d)| d);
            let dn_rebuilt = rebuilt.nearest(&q).map(|(_, d)| d);
            prop_assert_eq!(dn, dn_rebuilt);
            let mut visits = 0u64;
            let d2 = t.min_dist2_multi(std::slice::from_ref(&q), &mut visits);
            let mut visits_rebuilt = 0u64;
            let d2_rebuilt =
                rebuilt.min_dist2_multi(std::slice::from_ref(&q), &mut visits_rebuilt);
            prop_assert_eq!(d2, d2_rebuilt);
        }
    }

    /// A predicate that matches nothing returns `None` and leaves the tree
    /// untouched — the "try each shard's tree" owner-discovery contract of
    /// the sharded delete path.
    #[test]
    fn prop_no_match_means_no_mutation(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40),
        pick in 0usize..1000,
        fanout in 2usize..7,
    ) {
        let mut t = point_tree(&pts, fanout);
        let victim = pick % pts.len();
        let target = Mbr::from_point(&pt(pts[victim].0, pts[victim].1));
        // Right place, wrong payload: probes the exact leaf region the
        // entry lives in, so the no-match path walks the full descent.
        prop_assert_eq!(t.remove_item(&target, |&x| x == pts.len() + 7), None);
        prop_assert_eq!(t.len(), pts.len());
        t.validate_structure().map_err(|e| {
            TestCaseError::fail(format!("no-match removal mutated the tree: {e}"))
        })?;
        let mut got: Vec<usize> = t.items().into_iter().copied().collect();
        got.sort_unstable();
        prop_assert_eq!(got, (0..pts.len()).collect::<Vec<_>>());
    }

    /// Removing everything but one item in random order never wedges the
    /// tree: condensation keeps every intermediate tree valid down to a
    /// single-entry root, and re-inserting afterwards works.
    #[test]
    fn prop_drain_then_reuse(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..40),
        seed in 0usize..1000,
        fanout in 2usize..6,
    ) {
        let mut t = point_tree(&pts, fanout);
        let mut alive: Vec<usize> = (0..pts.len()).collect();
        while alive.len() > 1 {
            let victim = alive[(seed + alive.len()) % alive.len()];
            let target = Mbr::from_point(&pt(pts[victim].0, pts[victim].1));
            prop_assert_eq!(t.remove_item(&target, |&x| x == victim), Some(victim));
            alive.retain(|&x| x != victim);
        }
        prop_assert_eq!(t.len(), 1);
        t.validate_structure().map_err(|e| {
            TestCaseError::fail(format!("invalid after drain: {e}"))
        })?;
        // The condensed tree keeps working as an insertion target.
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(Mbr::from_point(&pt(x, y)), pts.len() + i);
        }
        prop_assert_eq!(t.len(), 1 + pts.len());
        t.validate_structure().map_err(|e| {
            TestCaseError::fail(format!("invalid after refill: {e}"))
        })?;
    }
}
