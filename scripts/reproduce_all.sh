#!/usr/bin/env bash
# Reproduce everything: tests, paper figures, stress validation, benches.
# Usage: scripts/reproduce_all.sh [--paper-scale]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --workspace --release

echo "== test suite =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== randomized stress validation (200 rounds) =="
cargo run --release -p osd-bench --bin stress -- 200

echo "== paper figures =="
cargo run --release -p osd-bench --bin repro -- all "$@" --out-dir results/

echo "== motivation experiment (NN-core comparison) =="
cargo run --release -p osd-bench --bin repro -- motivation --out-dir results/

echo "== microbenchmarks =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done — figures in results/, raw criterion data in target/criterion/"
