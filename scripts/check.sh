#!/usr/bin/env bash
# The static-analysis gate: formatting, clippy (deny-by-default workspace
# lints), the repo-specific xtask analyzer, and the test suite — in both
# the default and the strict-invariants configuration.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== xtask check (repo-specific rules) =="
cargo run -q -p xtask -- check

echo "== xtask check --format json (CI schema) =="
# The machine-readable report CI consumes: validate the schema keys with
# plain grep (no jq in the base image) and require a clean verdict.
JSON_OUT="$(cargo run -q -p xtask -- check --format json)"
for key in '"tool": "xtask-check"' '"files_scanned"' '"manifests_scanned"' \
           '"waivers"' '"diagnostics": []' '"ok": true'; do
  printf '%s' "$JSON_OUT" | grep -qF "$key" \
    || { echo "xtask json: missing $key"; printf '%s\n' "$JSON_OUT"; exit 1; }
done

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo test --features strict-invariants =="
cargo test -q --features strict-invariants
cargo test -q -p osd-core --features strict-invariants
cargo test -q -p osd-rtree --features strict-invariants

echo "== columnar store round-trip (bit-identity) =="
# The SoA InstanceStore must be a bit-for-bit re-encoding of the boxed
# object model, with and without the audit layer.
cargo test -q --test store_roundtrip
cargo test -q --features strict-invariants --test store_roundtrip

echo "== batch executor under strict-invariants =="
# Drives QueryEngine::run_batch with the audit layer on: every dominance
# check in every worker thread re-runs the cover-chain debug_assert!.
cargo test -q --features strict-invariants --test strict_invariants \
  batch_executor_audits_hold_across_threads

echo "== repro kernels --smoke (bit-identity of the blocked kernels) =="
# The blocked hot-path kernels are a pure execution strategy: candidate
# ids, min_dist bits and the frozen cost counters must match the scalar
# reference paths exactly. The smoke workload fails the build on the
# first divergence.
cargo run -q -p osd-bench --bin repro -- kernels --smoke

echo "== repro scale --smoke (sharded-index bit-identity) =="
# The STR-sharded index is a pure layout change: flat, merged-forest and
# scatter-gather candidates must be identical, and the merged traversal's
# shared prune bound must never visit more nodes than the independent
# per-shard descents. Assertion-only; never touches BENCH_scale.json.
cargo run -q --release -p osd-bench --bin repro -- scale --smoke

echo "== repro mutate --smoke (epoch churn under concurrent readers) =="
# The epoch-published store under churn: every mutation must publish
# exactly one epoch, pinned reader snapshots must never expose a dead
# candidate, and the standing continuous-NNC handle must stay
# bit-identical to a full re-query on every snapshot. Assertion-only;
# never touches BENCH_mutate.json.
cargo run -q --release -p osd-bench --bin repro -- mutate --smoke

echo "== repro trace --smoke (tracer purity) =="
# The flight recorder is pure observability: traced and untraced runs of
# the same workload must be bit-identical (ids, min_dist bits, counters),
# every traced query must yield a rooted span tree, and the obs-off build
# must record nothing. Assertion-only; never touches BENCH_trace.json.
cargo run -q --release -p osd-bench --bin repro -- trace --smoke --n 300 --queries 6

echo "== repro warm --smoke (warm-cache bit-identity & eviction) =="
# The epoch-keyed warm cache is a pure memoisation layer: warm answers
# must be bit-identical to cold (flat, sharded, and at every churn
# epoch), a repeated workload must hit, and epoch invalidation must
# evict touched entries. Assertion-only; never touches BENCH_warm.json.
cargo run -q --release -p osd-bench --bin repro -- warm --smoke

echo "== osd query --profile=json smoke (schema) =="
# End-to-end observability check: a real query through the obs-enabled CLI
# must emit a profile document carrying every phase of the taxonomy.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -q -p osd-cli --bin osd -- gen --out "$SMOKE_DIR/smoke.csv" \
  --dataset indep --n 60 --m 3 --dim 2 --seed 7
cargo run -q -p osd-cli --bin osd -- query --data "$SMOKE_DIR/smoke.csv" \
  --query "5000,5000;5100,5100" --op psd --profile=json > "$SMOKE_DIR/profile.out"
for key in '"enabled": true' '"prepare"' '"rtree-descent"' '"level-prune"' \
           '"validate"' '"refine"' '"rtree_node_visits"' '"heap_high_water"' \
           '"instance_comparisons"'; do
  grep -qF "$key" "$SMOKE_DIR/profile.out" \
    || { echo "profile smoke: missing $key"; exit 1; }
done

echo "== osd query --trace=chrome smoke (trace-event schema) =="
# The Chrome trace export must be loadable by chrome://tracing: a JSON
# array of complete/instant events with the trace-event keys, plus the
# span names of the query taxonomy. The same run must append to the
# flight-recorder file and `osd trace` must read it back.
cargo run -q -p osd-cli --bin osd -- query --data "$SMOKE_DIR/smoke.csv" \
  --query "5000,5000;5100,5100" --op psd --trace=chrome \
  --recorder "$SMOKE_DIR/flight.log" > "$SMOKE_DIR/trace.out"
for key in '"traceEvents"' '"ph":"X"' '"ph":"i"' '"ts":' '"dur":' '"pid":0' \
           '"tid":0' '"name":"query"' '"name":"prepare"' '"name":"rtree-descent"'; do
  grep -qF "$key" "$SMOKE_DIR/trace.out" \
    || { echo "trace smoke: missing $key"; exit 1; }
done
cargo run -q -p osd-cli --bin osd -- trace last 1 \
  --recorder "$SMOKE_DIR/flight.log" > "$SMOKE_DIR/trace-read.out"
grep -qF "recorded" "$SMOKE_DIR/trace-read.out" \
  || { echo "trace smoke: osd trace could not read the recorder back"; exit 1; }

echo "check.sh: all gates passed"
