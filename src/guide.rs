//! # A guided tour of `osd`
//!
//! This module is documentation-only: a walkthrough of the concepts from
//! *Optimal Spatial Dominance* (SIGMOD 2015) mapped onto this library's
//! API. Every code block compiles and runs as a doctest.
//!
//! ## 1. Objects with multiple instances
//!
//! An [`UncertainObject`](osd_uncertain::UncertainObject) is a set of
//! weighted points. Weights are probabilities (they sum to 1); multi-valued
//! objects with raw weights are normalised on construction — §2.1 of the
//! paper shows this preserves NN ranks whenever total masses are equal.
//!
//! ```
//! use osd::prelude::*;
//!
//! // A delivery driver seen at three recent locations.
//! let driver = UncertainObject::new(vec![
//!     (Point::from([12.0, 7.0]), 0.5),  // most likely: last ping
//!     (Point::from([11.0, 9.0]), 0.3),
//!     (Point::from([14.0, 6.0]), 0.2),
//! ]);
//! assert_eq!(driver.len(), 3);
//!
//! // Same thing from raw weights (e.g. ping recency scores).
//! let same = UncertainObject::from_weighted(vec![
//!     (Point::from([12.0, 7.0]), 5.0),
//!     (Point::from([11.0, 9.0]), 3.0),
//!     (Point::from([14.0, 6.0]), 2.0),
//! ]);
//! assert!((same.instances()[0].prob - 0.5).abs() < 1e-12);
//! ```
//!
//! ## 2. Distance distributions and the stochastic order
//!
//! The similarity of an object to a (possibly multi-instance) query is the
//! *distribution* of pairwise distances. The usual stochastic order
//! compares such distributions pointwise on their CDFs; it is the engine
//! behind the S-SD and SS-SD operators.
//!
//! ```
//! use osd::prelude::*;
//! use osd::uncertain::stochastically_dominates;
//!
//! let q = UncertainObject::uniform(vec![Point::from([0.0, 0.0])]);
//! let near = UncertainObject::uniform(vec![Point::from([1.0, 0.0]), Point::from([2.0, 0.0])]);
//! let far  = UncertainObject::uniform(vec![Point::from([3.0, 0.0]), Point::from([4.0, 0.0])]);
//!
//! let d_near = DistanceDistribution::between(&near, &q);
//! let d_far  = DistanceDistribution::between(&far, &q);
//! assert!(stochastically_dominates(&d_near, &d_far));
//! assert!(d_near.mean() < d_far.mean());       // implied: mean is stable
//! assert!(d_near.quantile(0.5) <= d_far.quantile(0.5)); // so is any quantile
//! ```
//!
//! ## 3. The three families of NN functions
//!
//! Different applications rank multi-instance objects differently. The
//! paper organises the popular choices into three families, all
//! implemented in [`osd::nnfuncs`](osd_nnfuncs):
//!
//! * **N1** — aggregates of the full distance distribution
//!   ([`N1Function`](osd_nnfuncs::N1Function): min, max, mean, quantiles);
//! * **N2** — possible-world semantics
//!   ([`nn_probability`](osd_nnfuncs::nn_probability),
//!   [`N2Function`](osd_nnfuncs::N2Function): expected rank, global top-k,
//!   parameterized ranking);
//! * **N3** — selected-pairs distances
//!   ([`hausdorff`](osd_nnfuncs::hausdorff), [`emd`](osd_nnfuncs::emd),
//!   [`sum_min`](osd_nnfuncs::sum_min)).
//!
//! Crucially, these functions *disagree* about who the nearest neighbour
//! is — that disagreement is the reason NN candidates exist:
//!
//! ```
//! use osd::prelude::*;
//! use osd::nnfuncs::nn_under;
//!
//! let q = UncertainObject::uniform(vec![Point::from([0.0])]);
//! let risky  = UncertainObject::new(vec![
//!     (Point::from([1.0]), 0.6), (Point::from([10.0]), 0.4),
//! ]);
//! let steady = UncertainObject::new(vec![
//!     (Point::from([4.0]), 0.6), (Point::from([4.5]), 0.4),
//! ]);
//! let objs = vec![risky, steady];
//! let by_min = nn_under(&objs, |o| N1Function::Min.score(o, &q)).unwrap();
//! let by_max = nn_under(&objs, |o| N1Function::Max.score(o, &q)).unwrap();
//! assert_eq!(by_min, 0); // the risky object has the closest instance…
//! assert_eq!(by_max, 1); // …and the worst tail.
//! ```
//!
//! ## 4. Candidates instead of commitments
//!
//! When the user has not committed to a function, compute the candidate
//! set for the *family* they might choose from. Pick the operator by
//! coverage (Figure 5 of the paper): S-SD for N1, SS-SD for N1 ∪ N2,
//! P-SD for everything.
//!
//! ```
//! use osd::prelude::*;
//!
//! let objects: Vec<UncertainObject> = (0..30)
//!     .map(|i| {
//!         let x = 2.0 + (i as f64) * 1.5;
//!         UncertainObject::uniform(vec![
//!             Point::from([x, 0.0]),
//!             Point::from([x + 0.5, 0.5]),
//!         ])
//!     })
//!     .collect();
//! let db = Database::new(objects);
//! let q = PreparedQuery::new(UncertainObject::uniform(vec![
//!     Point::from([0.0, 0.0]),
//!     Point::from([1.0, 0.0]),
//! ]));
//!
//! let ssd  = nn_candidates(&db, &q, Operator::SSd, &FilterConfig::all());
//! let sssd = nn_candidates(&db, &q, Operator::SsSd, &FilterConfig::all());
//! let psd  = nn_candidates(&db, &q, Operator::PSd, &FilterConfig::all());
//! // The inclusion chain of Figure 5:
//! assert!(ssd.candidates.len() <= sssd.candidates.len());
//! assert!(sssd.candidates.len() <= psd.candidates.len());
//! ```
//!
//! ## 5. Streaming, robustness, explanations
//!
//! The traversal is progressive — candidates are final as soon as they are
//! emitted ([`ProgressiveNnc`](osd_core::ProgressiveNnc)); shortlists that
//! must survive losing members use
//! [`k_nn_candidates`](osd_core::k_nn_candidates); and
//! [`dominators_of`](osd_core::dominators_of) explains why an object was
//! excluded.
//!
//! ```
//! use osd::prelude::*;
//! use osd::core::dominators_of;
//!
//! let db = Database::new(vec![
//!     UncertainObject::uniform(vec![Point::from([1.0, 0.0])]),
//!     UncertainObject::uniform(vec![Point::from([5.0, 0.0])]),
//! ]);
//! let q = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([0.0, 0.0])]));
//! let doms = dominators_of(&db, &q, Operator::PSd, 1, &FilterConfig::all());
//! assert_eq!(doms, vec![0]); // object 1 is excluded because 0 dominates it
//! ```
//!
//! ## 6. Performance knobs
//!
//! [`FilterConfig`](osd_core::FilterConfig) switches the §5.1 filtering
//! techniques; `FilterConfig::all()` is the production default, and the
//! other presets exist for the Appendix C ablation. All presets return
//! identical candidate sets — only the work differs — which the test suite
//! enforces (`prop_filter_config_invariance`, the `stress` binary).
//!
//! For data that does not fit the Euclidean assumption,
//! [`Metric`](osd_uncertain::Metric)-parameterised variants of the
//! stochastic operators live in
//! [`osd::uncertain::metric`](osd_uncertain::metric).
