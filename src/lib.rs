//! # osd — Optimal Spatial Dominance
//!
//! A from-scratch Rust reproduction of *"Optimal Spatial Dominance: An
//! Effective Search of Nearest Neighbor Candidates"* (SIGMOD 2015): NN
//! candidate search over objects with multiple instances, via three
//! dominance operators that are provably optimal for growing families of
//! NN functions.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`geom`] — points, MBRs, convex hulls, the exact O(d) MBR dominance
//!   test, a small simplex solver;
//! * [`rtree`] — STR-bulk-loaded R-trees with best-first traversal;
//! * [`flow`] — Dinic max-flow and min-cost max-flow;
//! * [`uncertain`] — multi-instance objects, distance distributions,
//!   stochastic & match orders;
//! * [`nnfuncs`] — the N1 / N2 / N3 NN-function families;
//! * [`core`] — the dominance operators and Algorithm 1 (NNC);
//! * [`obs`] — query-pipeline instrumentation: phase timers, metrics,
//!   JSON/Prometheus exposition (no-op unless the `obs` feature is on);
//! * [`datagen`] — synthetic and surrogate dataset generators.
//!
//! ## Quick start
//!
//! ```
//! use osd::prelude::*;
//!
//! let objects = vec![
//!     UncertainObject::uniform(vec![Point::from([1.0, 1.0]), Point::from([2.0, 2.0])]),
//!     UncertainObject::uniform(vec![Point::from([1.5, 1.0]), Point::from([2.0, 2.5])]),
//!     UncertainObject::uniform(vec![Point::from([9.0, 9.0]), Point::from([9.5, 9.5])]),
//! ];
//! let db = Database::new(objects);
//! let query = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([0.0, 0.0])]));
//! let cands = nn_candidates(&db, &query, Operator::PSd, &FilterConfig::all());
//! assert!(!cands.ids().contains(&2)); // the far object is never the NN
//! ```

#![warn(missing_docs)]

pub mod guide;

pub use osd_core as core;
pub use osd_datagen as datagen;
pub use osd_flow as flow;
pub use osd_geom as geom;
pub use osd_nncore as nncore;
pub use osd_nnfuncs as nnfuncs;
pub use osd_obs as obs;
pub use osd_rtree as rtree;
pub use osd_uncertain as uncertain;

/// The most common imports in one place.
pub mod prelude {
    pub use osd_core::{
        batch_metrics, batch_stats, dominates, f_plus_sd, f_sd, k_nn_candidates,
        k_nn_candidates_bruteforce, nn_candidates, nn_candidates_bruteforce, p_sd, s_sd, ss_sd,
        Candidate, CheckCtx, Database, DominanceCache, FilterConfig, FlightRecorder, KnncResult,
        NncResult, Operator, PreparedQuery, ProgressiveNnc, QueryEngine, QueryMetrics, QueryTrace,
        Stats, TraceData,
    };
    pub use osd_geom::{Mbr, Point};
    pub use osd_nnfuncs::{
        emd, hausdorff, netflow, nn_probability, rank_distribution, sum_min, N1Function, N2Function,
    };
    pub use osd_uncertain::{DistanceDistribution, UncertainObject};
}
