//! Quickstart: NN-candidate search over a handful of multi-instance
//! objects, comparing the five dominance operators.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// Example binary: aborting on bad state is fine here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use osd::prelude::*;

fn main() {
    // Four shops, each known by a few surveyed locations (e.g. noisy GPS
    // fixes). Instance weights are uniform.
    let objects = vec![
        // 0: tight cluster near the query
        UncertainObject::uniform(vec![
            Point::from([1.0, 1.0]),
            Point::from([1.2, 0.8]),
            Point::from([0.9, 1.1]),
        ]),
        // 1: slightly farther, slightly wider
        UncertainObject::uniform(vec![
            Point::from([1.6, 1.4]),
            Point::from([2.0, 1.9]),
            Point::from([1.8, 1.5]),
        ]),
        // 2: one instance very close, one far — risky but sometimes nearest
        UncertainObject::uniform(vec![Point::from([0.3, 0.4]), Point::from([6.0, 6.0])]),
        // 3: clearly distant
        UncertainObject::uniform(vec![Point::from([9.0, 9.0]), Point::from([9.5, 8.5])]),
    ];

    // The query is itself uncertain: two possible positions.
    let query = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([0.0, 0.0]),
        Point::from([0.5, 0.5]),
    ]));

    let db = Database::new(objects);
    println!("objects: {}, query instances: {}\n", db.len(), query.len());

    println!("{:<6} {:>10}  candidates", "op", "|NNC|");
    for op in Operator::ALL {
        let result = nn_candidates(&db, &query, op, &FilterConfig::all());
        println!(
            "{:<6} {:>10}  {:?}",
            op.label(),
            result.candidates.len(),
            result.ids()
        );
    }

    // Why the far object never shows up: everything peer-dominates it.
    let far = db.object(3).to_object();
    let near = db.object(0).to_object();
    println!(
        "\nP-SD(near, far, Q) = {}",
        p_sd(&near, &far, query.object())
    );

    // And why object 2 survives: under the `min` aggregate it is the best.
    let d0 = DistanceDistribution::between_ref(db.object(0), query.object());
    let d2 = DistanceDistribution::between_ref(db.object(2), query.object());
    println!(
        "min-dist: object0 = {:.3}, object2 = {:.3}  (object2 wins under f = min)",
        d0.min(),
        d2.min()
    );
}
