//! k-robust shortlists and CSV interchange.
//!
//! A dispatcher wants the nearest ambulance to an incident. Ambulances have
//! uncertain positions (recent GPS pings), some may turn out unavailable —
//! so the shortlist must still contain the nearest one after losing up to
//! `k − 1` entries. That is exactly the k-robust NN candidate set
//! (`NNC_k`): objects dominated by fewer than `k` others.
//!
//! The fleet is round-tripped through the CSV interchange format on the
//! way, showing how external data plugs in.
//!
//! ```text
//! cargo run --release --example robust_shortlist
//! ```

// Example binary: aborting on bad state is fine here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use osd::datagen::{read_objects_csv, write_objects_csv};
use osd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Simulate a fleet of 200 ambulances, each with 5 recent GPS pings.
    let mut rng = StdRng::seed_from_u64(1234);
    let fleet: Vec<UncertainObject> = (0..200)
        .map(|_| {
            let cx = rng.gen_range(0.0..10_000.0);
            let cy = rng.gen_range(0.0..10_000.0);
            UncertainObject::uniform(
                (0..5)
                    .map(|_| {
                        Point::from([
                            cx + rng.gen_range(-150.0..150.0),
                            cy + rng.gen_range(-150.0..150.0),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();

    // Round-trip through the CSV interchange format.
    let path = std::env::temp_dir().join("osd-fleet.csv");
    write_objects_csv(&path, &fleet).expect("write fleet");
    let fleet = read_objects_csv(&path).expect("read fleet");
    std::fs::remove_file(&path).ok();
    println!("loaded {} ambulances from CSV", fleet.len());

    let db = Database::new(fleet);
    // The incident location is fuzzy (two witness reports).
    let incident = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([5_000.0, 5_000.0]),
        Point::from([5_120.0, 4_940.0]),
    ]));

    println!(
        "\n{:>3} {:>10} {:>30}",
        "k", "shortlist", "ids (emission order)"
    );
    for k in [1usize, 2, 3, 5] {
        let res = k_nn_candidates(&db, &incident, Operator::SsSd, k, &FilterConfig::all());
        let ids = res.ids();
        println!(
            "{:>3} {:>10} {:>30}",
            k,
            ids.len(),
            format!("{:?}", &ids[..ids.len().min(8)])
        );
    }

    // Robustness check: remove the k=1 candidates from the database and
    // verify the next-best is already inside the k=2 shortlist.
    let k1: Vec<usize> =
        k_nn_candidates(&db, &incident, Operator::SsSd, 1, &FilterConfig::all()).ids();
    let k2: Vec<usize> =
        k_nn_candidates(&db, &incident, Operator::SsSd, 2, &FilterConfig::all()).ids();
    let survivors: Vec<UncertainObject> = (0..db.len())
        .filter(|i| !k1.contains(i))
        .map(|i| db.object(i).to_object())
        .collect();
    let id_map: Vec<usize> = (0..db.len()).filter(|i| !k1.contains(i)).collect();
    let db2 = Database::new(survivors);
    let after: Vec<usize> = nn_candidates(&db2, &incident, Operator::SsSd, &FilterConfig::all())
        .ids()
        .into_iter()
        .map(|i| id_map[i])
        .collect();
    let all_covered = after.iter().all(|id| k2.contains(id));
    println!(
        "\nafter losing every rank-1 candidate, the new candidates {:?} are {} the k=2 shortlist",
        &after[..after.len().min(8)],
        if all_covered {
            "all inside"
        } else {
            "NOT all inside (!)"
        }
    );
}
