//! The paper's §1 motivation, live: the prior NN-core proposal (Yuen et
//! al.) picks a single "winner-take-all" candidate set from pairwise
//! superseding competitions — and thereby misses the nearest neighbour
//! under common NN functions. The SD candidate sets never do.
//!
//! ```text
//! cargo run --release --example nncore_comparison
//! ```

// Example binary: aborting on bad state is fine here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use osd::datagen::{generate_objects, CenterDistribution, SynthParams};
use osd::nncore::{nn_core, win_probability};
use osd::prelude::*;

fn main() {
    // Figure 1, replayed: three objects on a line, query at the origin.
    let q1 = UncertainObject::uniform(vec![Point::from([0.0])]);
    let a = UncertainObject::new(vec![(Point::from([1.0]), 0.6), (Point::from([8.0]), 0.4)]);
    let b = UncertainObject::new(vec![(Point::from([2.0]), 0.6), (Point::from([5.0]), 0.4)]);
    let c = UncertainObject::new(vec![(Point::from([3.9]), 0.6), (Point::from([4.0]), 0.4)]);
    println!("--- Figure 1 ---");
    println!("Pr(A beats B) = {:.2}", win_probability(&a, &b, &q1));
    let objs = vec![a, b, c];
    println!("NN-core          = {:?} (A only)", nn_core(&objs, &q1));
    let by_mean = best(&objs, |o| N1Function::Mean.score(o, &q1));
    let by_max = best(&objs, |o| N1Function::Max.score(o, &q1));
    println!("winner under mean = object {by_mean} (B)  — missed by NN-core");
    println!("winner under max  = object {by_max} (C)  — missed by NN-core");
    let db = Database::new(objs);
    let pq = PreparedQuery::new(q1);
    let ssd = nn_candidates(&db, &pq, Operator::SSd, &FilterConfig::all());
    println!("NNC(S-SD)         = {:?} (contains both)", {
        let mut v = ssd.ids();
        v.sort_unstable();
        v
    });

    // The same effect at dataset scale: overlapping objects, many queries.
    println!("\n--- dataset scale (n = 200, overlapping) ---");
    let objects = generate_objects(&SynthParams {
        n: 200,
        dim: 2,
        instances: 6,
        edge: 2_500.0,
        centers: CenterDistribution::Independent,
        seed: 404,
    });
    let db = Database::new(objects);
    let boxed = db.store().to_objects();
    let mut core_misses = 0;
    let mut sd_misses = 0;
    let queries = 10;
    for k in 0..queries {
        let q = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([
            3_000.0 + 500.0 * k as f64,
            5_000.0,
        ])]));
        let core = nn_core(&boxed, q.object());
        let ssd = nn_candidates(&db, &q, Operator::SSd, &FilterConfig::all()).ids();
        let w = best(&boxed, |o| N1Function::Max.score(o, q.object()));
        if !core.contains(&w) {
            core_misses += 1;
        }
        if !ssd.contains(&w) {
            sd_misses += 1;
        }
    }
    println!("max-distance winner missed by NN-core: {core_misses}/{queries} queries");
    println!("max-distance winner missed by S-SD   : {sd_misses}/{queries} queries (always 0, by Theorem 5)");
}

fn best(objs: &[UncertainObject], score: impl Fn(&UncertainObject) -> f64) -> usize {
    (0..objs.len())
        .min_by(|&a, &b| score(&objs[a]).total_cmp(&score(&objs[b])))
        .unwrap()
}
