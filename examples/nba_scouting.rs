//! Multi-valued objects (the paper's NBA motivation): each player is a set
//! of per-game stat lines (points, assists, rebounds). A scout describes a
//! target profile — possibly a range of acceptable profiles — and asks for
//! the candidate set of most-similar players, without committing to one
//! similarity function.
//!
//! ```text
//! cargo run --release --example nba_scouting
//! ```

// Example binary: aborting on bad state is fine here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use osd::datagen::nba_like;
use osd::prelude::*;

fn main() {
    // 150 players × 60 games, 3-d stat space scaled to [0, 10000].
    let players = nba_like(150, 60, 7);
    let db = Database::new(players);

    // The scout's target: a star-ish profile, with two acceptable variants
    // (score-first or playmaking-first).
    let target = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([6_500.0, 2_500.0, 4_000.0]),
        Point::from([5_500.0, 4_000.0, 3_500.0]),
    ]));

    println!("--- shortlist sizes by dominance operator ---");
    for op in Operator::ALL {
        let res = nn_candidates(&db, &target, op, &FilterConfig::all());
        println!("{:<6} {:>4} players", op.label(), res.candidates.len());
    }

    // Compare the winners of three very different similarity notions.
    let ssd = nn_candidates(&db, &target, Operator::SSd, &FilterConfig::all());
    let sssd = nn_candidates(&db, &target, Operator::SsSd, &FilterConfig::all());
    let psd = nn_candidates(&db, &target, Operator::PSd, &FilterConfig::all());

    let by_mean = best_by(&db, |o| N1Function::Mean.score(o, target.object()));
    let by_max = best_by(&db, |o| N1Function::Max.score(o, target.object()));
    let by_emd = best_by(&db, |o| emd(o, target.object()));
    let by_q25 = best_by(&db, |o| {
        N1Function::Quantile(0.25).score(o, target.object())
    });

    println!("\n--- winners under specific functions ---");
    println!(
        "expected distance  → player {by_mean:>3} | in SSD set: {}",
        ssd.ids().contains(&by_mean)
    );
    println!(
        "max distance       → player {by_max:>3} | in SSD set: {}",
        ssd.ids().contains(&by_max)
    );
    println!(
        "0.25-quantile      → player {by_q25:>3} | in SSD set: {}",
        ssd.ids().contains(&by_q25)
    );
    println!(
        "earth mover's      → player {by_emd:>3} | in PSD set: {}",
        psd.ids().contains(&by_emd)
    );

    // NN probability (a possible-world / N2 function) on the SS-SD
    // shortlist: computing it for the shortlist only is cheap, and the
    // winner is guaranteed to be inside.
    println!("\n--- NN probability across the SS-SD shortlist ---");
    let shortlist = sssd.ids();
    let objects = db.store().to_objects();
    let mut scored: Vec<(usize, f64)> = shortlist
        .iter()
        .map(|&id| (id, nn_probability(&objects, id, target.object())))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (id, p) in scored.iter().take(5) {
        println!("player {id:>3}  Pr(nearest) = {p:.4}");
    }
    println!(
        "\n(The shortlist has {} players out of {}; every possible-world \
         ranking winner is inside it.)",
        shortlist.len(),
        db.len()
    );
}

fn best_by(db: &Database, score: impl Fn(&UncertainObject) -> f64) -> usize {
    let objects = db.store().to_objects();
    (0..db.len())
        .min_by(|&a, &b| score(&objects[a]).total_cmp(&score(&objects[b])))
        .unwrap()
}
