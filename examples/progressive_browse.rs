//! The progressive property (Figure 14): candidates stream out as the
//! traversal runs, best-first — a UI can show the first page immediately,
//! the way a web search engine does.
//!
//! ```text
//! cargo run --release --example progressive_browse
//! ```

// Example binary: aborting on bad state is fine here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use osd::datagen::{generate_objects, CenterDistribution, SynthParams};
use osd::prelude::*;

fn main() {
    let objects = generate_objects(&SynthParams {
        n: 3_000,
        dim: 2,
        instances: 10,
        edge: 400.0,
        centers: CenterDistribution::Independent,
        seed: 99,
    });
    let db = Database::new(objects);
    let query = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([5_000.0, 5_000.0]),
        Point::from([5_200.0, 5_100.0]),
        Point::from([4_900.0, 5_150.0]),
    ]));

    let cfg = FilterConfig::all();
    let mut traversal = ProgressiveNnc::new(&db, &query, Operator::PSd, &cfg);

    println!(
        "{:>4} {:>8} {:>12} {:>12}",
        "#", "object", "min-dist", "elapsed"
    );
    let mut count = 0;
    while let Some(c) = traversal.next_candidate() {
        count += 1;
        // A real application would hand each candidate to the user as it
        // arrives; here we print the stream.
        println!(
            "{:>4} {:>8} {:>12.2} {:>10.2?}",
            count, c.id, c.min_dist, c.elapsed
        );
        if count >= 15 {
            println!("... (stopping the stream early — no wasted work on the rest)");
            break;
        }
    }
    println!(
        "\nchecked {} objects so far; dominance stats: {:?}",
        traversal.objects_checked(),
        traversal.stats()
    );
}
