//! Check-in scenario (the paper's GoWalla motivation): each user is an
//! object whose instances are their check-in locations. Given an event
//! venue (the query), compute the candidate set of "nearest users" that is
//! safe for *every* reasonable NN function — then drill into what each
//! concrete function would pick.
//!
//! ```text
//! cargo run --release --example poi_checkins
//! ```

// Example binary: aborting on bad state is fine here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use osd::datagen::gowalla_like;
use osd::prelude::*;

fn main() {
    // 400 users, 15 check-ins each, deterministic seed.
    let users = gowalla_like(400, 15, 2026);
    let db = Database::new(users);

    // The event venue is uncertain too: three possible entrances.
    let venue = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([5_000.0, 5_000.0]),
        Point::from([5_060.0, 4_950.0]),
        Point::from([4_950.0, 5_080.0]),
    ]));

    println!("--- candidate sets (operator → size) ---");
    let mut psd_ids = Vec::new();
    for op in Operator::ALL {
        let res = nn_candidates(&db, &venue, op, &FilterConfig::all());
        println!("{:<6} {:>5} candidates", op.label(), res.candidates.len());
        if op == Operator::PSd {
            psd_ids = res.ids();
        }
    }

    // Every concrete NN function must pick its winner inside the matching
    // candidate set. Demonstrate with a few N1 and N3 functions.
    println!("\n--- who wins under concrete NN functions ---");
    let n1_funcs = [
        N1Function::Min,
        N1Function::Mean,
        N1Function::Max,
        N1Function::Quantile(0.5),
    ];
    let boxed = db.store().to_objects();
    for f in n1_funcs {
        let best = (0..db.len())
            .min_by(|&a, &b| {
                f.score(&boxed[a], venue.object())
                    .total_cmp(&f.score(&boxed[b], venue.object()))
            })
            .unwrap();
        println!(
            "{:<14} → user {:>3} (in P-SD candidates: {})",
            format!("{:?}", f),
            best,
            psd_ids.contains(&best)
        );
    }
    for (name, f) in [
        (
            "hausdorff",
            hausdorff as fn(&UncertainObject, &UncertainObject) -> f64,
        ),
        ("emd", emd),
        ("sum_min", sum_min),
    ] {
        let best = (0..db.len())
            .min_by(|&a, &b| f(&boxed[a], venue.object()).total_cmp(&f(&boxed[b], venue.object())))
            .unwrap();
        println!(
            "{:<14} → user {:>3} (in P-SD candidates: {})",
            name,
            best,
            psd_ids.contains(&best)
        );
    }

    println!(
        "\nThe P-SD candidate set ({} of {} users) is guaranteed to contain \
         the winner of every N1/N2/N3 function.",
        psd_ids.len(),
        db.len()
    );
}
