//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal benchmark harness with the API the repo's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over a fixed wall-clock window, and the mean per-iteration
//! time is printed. Good enough for relative comparisons during
//! development; not a statistical replacement for upstream criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warmup, measure) = (self.warmup, self.measure);
        run_one(&id.to_string(), warmup, measure, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim time-boxes instead of
    /// counting samples, so this is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; no-op in the shim.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.measure = dur.min(Duration::from_secs(2));
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warmup,
            self.criterion.measure,
            &mut f,
        );
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warmup,
            self.criterion.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark as `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Handed to benchmark closures; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, warmup: Duration, measure: Duration, f: &mut F) {
    // Warm up and estimate the per-iteration cost with a growing batch.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= warmup || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };

    // One measured batch sized to roughly fill the measurement window.
    let target = (measure.as_secs_f64() / per_iter.max(1e-9)).clamp(1.0, 1e7) as u64;
    let mut b = Bencher {
        iters: target,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / target as f64;
    println!(
        "bench {label:<48} {:>12} /iter ({target} iters)",
        format_time(mean)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects benchmark functions into a runnable group, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
