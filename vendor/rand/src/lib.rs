//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, std-only implementation of the narrow `rand` 0.8 API surface the
//! repo actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open / inclusive ranges of the primitive
//! numeric types.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for data generation and property tests, deterministic per seed, and
//! dependency-free. It is **not** the same stream as upstream `StdRng`
//! (ChaCha12), so seeds here reproduce runs only against this shim.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range,
    /// matching upstream `rand`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the standard bits-to-unit-interval construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let j = rng.gen_range(2i32..=4);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn unit_interval_covers_mass() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
