//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal property-testing harness covering the API surface the repo uses:
//! the [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `prop_assert*` / [`prop_assume!`], range and tuple [`Strategy`]s,
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`], [`collection::vec`]
//! and `bool::ANY`.
//!
//! Differences from upstream: failing inputs are **not shrunk** — the panic
//! message instead reports the deterministic case seed so a failure is
//! reproducible by rerunning the test. Generation is deterministic per test
//! function (fixed base seed), so CI runs are stable.

/// Runner configuration; only the subset the repo uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The input was rejected by `prop_assume!`; try another input.
    Reject(String),
    /// A `prop_assert*` failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// An input rejection carrying `reason`.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic xoshiro256++ stream used to drive generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a stream that is a pure function of `seed` (SplitMix64 expand).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing predicate `f` (bounded retries).
    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Strategies can be taken by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive inputs: {}",
            self.whence
        )
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// A strategy yielding `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec length range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.usize_in(self.lo, self.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// See [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// A strategy yielding `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (does not count toward `cases`) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Defines property-test functions; see the crate docs for the differences
/// from upstream (no shrinking, deterministic seeds).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Base seed mixes the property name so sibling properties in one
            // file explore different streams.
            let mut case_seed: u64 = 0x5851_F42D_4C95_7F2D;
            for b in stringify!($name).bytes() {
                case_seed = case_seed.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
            }
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                case_seed = case_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut __rng = $crate::TestRng::seed_from_u64(case_seed);
                let ($($pat,)+) = (
                    $($crate::Strategy::generate(&($strat), &mut __rng),)+
                );
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body;
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected inputs ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} falsified at case {} (seed {case_seed:#x}): {msg}",
                            stringify!($name),
                            accepted + 1
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0.0f64..1.0, 5usize..9), v in prop::collection::vec(0i32..10, 2..5)) {
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in v {
                prop_assert!((0..10).contains(&x));
            }
        }

        #[test]
        fn map_and_assume(x in (0usize..100).prop_map(|v| v * 2), flag in prop::bool::ANY) {
            prop_assume!(x != 4);
            prop_assert_eq!(x % 2, 0);
            // `flag` only needs to typecheck as a generated bool.
            let _: bool = flag;
        }
    }

    #[test]
    fn falsification_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                // No #[test] here: the fn is local to this test body.
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must falsify");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("falsified"), "unexpected panic payload: {msg}");
    }
}
