//! Mutation identity: an index that grew through interleaved
//! insert/delete/update publishes **bit-identical** query results to an
//! index rebuilt from scratch over the surviving objects — ids (through
//! the tombstone-aware id map), `min_dist` bits, and emission order — for
//! both physical layouts. A standing [`ContinuousNnc`] handle refreshed
//! across the same epochs must match a full re-query on every snapshot.
//!
//! Everything here also runs under `--features strict-invariants`, where
//! the store audits and R-tree structure checks ride along with every
//! mutation.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd_core::{
    k_nn_candidates, nn_candidates, ContinuousNnc, Database, FilterConfig, Operator, PreparedQuery,
    ShardedDatabase, SpatialIndex,
};
use osd_datagen::{generate_objects, CenterDistribution, SynthParams};
use osd_uncertain::UncertainObject;
use proptest::prelude::*;

/// A randomized A-N (anti-correlated) pool, the paper's main data family.
fn an_objects(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    generate_objects(&SynthParams {
        n,
        dim: 2,
        instances,
        edge: 800.0,
        centers: CenterDistribution::AntiCorrelated,
        seed,
    })
}

/// One scripted mutation; `pick` indexes into the live id set, `fresh`
/// into the replacement-object pool.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { fresh: usize },
    Delete { pick: usize },
    Update { pick: usize, fresh: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..3, 0usize..1000, 0usize..1000).prop_map(|(kind, pick, fresh)| match kind {
        0 => Op::Insert { fresh },
        1 => Op::Delete { pick },
        _ => Op::Update { pick, fresh },
    })
}

/// The rebuild-from-scratch oracle: a fresh flat database over the live
/// objects in logical-id order, plus the dense→logical id map. The map is
/// monotone, so `(δ, id)` tie-breaks agree between the two id spaces.
fn oracle_of(shadow: &[Option<UncertainObject>]) -> (Database, Vec<usize>) {
    let mut logical_of = Vec::new();
    let mut live = Vec::new();
    for (id, slot) in shadow.iter().enumerate() {
        if let Some(obj) = slot {
            logical_of.push(id);
            live.push(obj.clone());
        }
    }
    (Database::new(live), logical_of)
}

/// Asserts the mutated index and the rebuilt oracle emit bit-identical
/// candidates (ids through the id map, `min_dist` bits, order).
fn assert_matches_oracle(
    db: &dyn SpatialIndex,
    shadow: &[Option<UncertainObject>],
    query: &PreparedQuery,
    op: Operator,
) {
    let cfg = FilterConfig::all();
    let mutated = nn_candidates(db, query, op, &cfg);
    let (oracle, logical_of) = oracle_of(shadow);
    let fresh = nn_candidates(&oracle, query, op, &cfg);
    let got: Vec<(usize, u64)> = mutated
        .candidates
        .iter()
        .map(|c| (c.id, c.min_dist.to_bits()))
        .collect();
    let want: Vec<(usize, u64)> = fresh
        .candidates
        .iter()
        .map(|c| (logical_of[c.id], c.min_dist.to_bits()))
        .collect();
    assert_eq!(got, want, "{op:?}: mutated index diverged from rebuild");

    // k-NNC (k = 2): ids, min_dist bits, order AND dominator counts.
    let mutated_k = k_nn_candidates(db, query, op, 2, &cfg);
    let fresh_k = k_nn_candidates(&oracle, query, op, 2, &cfg);
    let got_k: Vec<(usize, u64, usize)> = mutated_k
        .candidates
        .iter()
        .map(|(c, doms)| (c.id, c.min_dist.to_bits(), *doms))
        .collect();
    let want_k: Vec<(usize, u64, usize)> = fresh_k
        .candidates
        .iter()
        .map(|(c, doms)| (logical_of[c.id], c.min_dist.to_bits(), *doms))
        .collect();
    assert_eq!(got_k, want_k, "{op:?}: mutated k-NNC diverged from rebuild");
}

/// Asserts a refreshed standing handle is bit-identical to a full
/// re-query on the same snapshot.
fn assert_handle_matches(handle: &ContinuousNnc, db: &dyn SpatialIndex) {
    let full = nn_candidates(db, handle.query(), handle.op(), &FilterConfig::all());
    let got: Vec<(usize, u64)> = handle
        .candidates()
        .iter()
        .map(|c| (c.id, c.min_dist.to_bits()))
        .collect();
    let want: Vec<(usize, u64)> = full
        .candidates
        .iter()
        .map(|c| (c.id, c.min_dist.to_bits()))
        .collect();
    assert_eq!(
        got,
        want,
        "continuous repair diverged from full re-query at epoch {}",
        db.epoch()
    );
}

/// Drives one scripted run against both layouts, checking the oracle and
/// the standing handles after every published epoch.
fn run_script(seed: u64, ops: &[Op], op: Operator, shards: usize) {
    let pool = an_objects(64, 3, seed ^ 0x9e37_79b9);
    let mut next_fresh = 0usize;
    let mut take = |fresh: usize| {
        let obj = pool[(fresh + next_fresh) % pool.len()].clone();
        next_fresh += 1;
        obj
    };

    let seed_objects = an_objects(24, 3, seed);
    let mut shadow: Vec<Option<UncertainObject>> = seed_objects.iter().cloned().map(Some).collect();
    let mut flat = Database::new(seed_objects.clone());
    let mut sharded = ShardedDatabase::new(seed_objects, shards);

    let query = PreparedQuery::new(pool[pool.len() - 1].clone());
    let mut flat_handle = ContinuousNnc::new(&flat, query.clone(), op, FilterConfig::all());
    let mut sharded_handle = ContinuousNnc::new(&sharded, query.clone(), op, FilterConfig::all());

    for &scripted in ops {
        let live: Vec<usize> = (0..shadow.len()).filter(|&i| shadow[i].is_some()).collect();
        match scripted {
            Op::Insert { fresh } => {
                let obj = take(fresh);
                let id_flat = flat.try_insert(obj.clone()).expect("insert");
                let id_sharded = sharded.try_insert(obj.clone()).expect("insert");
                assert_eq!(id_flat, shadow.len(), "ids are dense over the id space");
                assert_eq!(id_flat, id_sharded, "layouts must agree on ids");
                shadow.push(Some(obj));
            }
            Op::Delete { pick } => {
                if live.len() <= 1 {
                    continue;
                }
                let id = live[pick % live.len()];
                flat.try_delete(id).expect("live id deletes");
                sharded.try_delete(id).expect("live id deletes");
                shadow[id] = None;
            }
            Op::Update { pick, fresh } => {
                let id = live[pick % live.len()];
                let obj = take(fresh);
                flat.try_update(id, obj.clone()).expect("live id updates");
                sharded
                    .try_update(id, obj.clone())
                    .expect("live id updates");
                shadow[id] = Some(obj);
            }
        }
        assert_eq!(flat.epoch(), sharded.epoch(), "epochs advance in lockstep");
        assert_matches_oracle(&flat, &shadow, &query, op);
        assert_matches_oracle(&sharded, &shadow, &query, op);
        flat_handle.refresh(&flat);
        sharded_handle.refresh(&sharded);
        assert_handle_matches(&flat_handle, &flat);
        assert_handle_matches(&sharded_handle, &sharded);
        assert_eq!(
            flat_handle.ids(),
            sharded_handle.ids(),
            "standing handles agree across layouts"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings, flat and 3-way sharded, peer dominance.
    #[test]
    fn prop_interleaved_mutations_match_rebuild_psd(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 1..14),
    ) {
        run_script(seed, &ops, Operator::PSd, 3);
    }

    /// Same scripts under strict stochastic dominance and more shards.
    #[test]
    fn prop_interleaved_mutations_match_rebuild_ssd(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 1..10),
    ) {
        run_script(seed, &ops, Operator::SSd, 4);
    }
}

/// Every operator survives a fixed interleaving touching all three
/// mutation kinds (cheap determinism on top of the randomized runs).
#[test]
fn all_operators_survive_a_fixed_interleaving() {
    let script = [
        Op::Insert { fresh: 3 },
        Op::Delete { pick: 5 },
        Op::Update { pick: 2, fresh: 11 },
        Op::Insert { fresh: 29 },
        Op::Delete { pick: 0 },
        Op::Update { pick: 7, fresh: 41 },
    ];
    for op in Operator::ALL {
        run_script(7, &script, op, 3);
    }
}
