//! End-to-end pipeline tests: generated datasets → indexed database →
//! NN-candidate search, checked for the Figure 5 inclusion chain, oracle
//! agreement, and the multi-valued-object normalisation claim of §1.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd::datagen::{
    generate_objects, generate_queries, gowalla_like, nba_like, CenterDistribution, SynthParams,
};
use osd::prelude::*;
use std::collections::BTreeSet;

fn candidate_sets(db: &Database, q: &PreparedQuery) -> Vec<BTreeSet<usize>> {
    Operator::ALL
        .iter()
        .map(|&op| {
            nn_candidates(db, q, op, &FilterConfig::all())
                .ids()
                .into_iter()
                .collect()
        })
        .collect()
}

#[test]
fn synthetic_pipeline_inclusion_and_oracle() {
    let params = SynthParams {
        n: 150,
        dim: 3,
        instances: 6,
        edge: 800.0,
        centers: CenterDistribution::AntiCorrelated,
        seed: 11,
    };
    let objects = generate_objects(&params);
    let queries = generate_queries(&params, 3, 5, 400.0, 77);
    let db = Database::new(objects);
    for q in queries {
        let pq = PreparedQuery::new(q);
        let sets = candidate_sets(&db, &pq);
        // Figure 5: NNC(S-SD) ⊆ NNC(SS-SD) ⊆ NNC(P-SD) ⊆ NNC(F-SD) ⊆ NNC(F⁺-SD).
        for w in sets.windows(2) {
            assert!(
                w[0].is_subset(&w[1]),
                "inclusion chain broken: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        assert!(!sets[0].is_empty(), "candidate sets are never empty");
        // Algorithm 1 agrees with the O(n²) oracle.
        for (i, &op) in Operator::ALL.iter().enumerate() {
            let (brute, _) = nn_candidates_bruteforce(&db, &pq, op, &FilterConfig::all());
            let brute: BTreeSet<usize> = brute.into_iter().collect();
            assert_eq!(sets[i], brute, "oracle mismatch for {op:?}");
        }
    }
}

#[test]
fn overlapping_dataset_pipeline() {
    // NBA-like data is the adversarial case: heavy overlap, big candidate
    // sets.
    let objects = nba_like(60, 12, 5);
    let db = Database::new(objects);
    let pq = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([5_000.0, 3_000.0, 4_000.0]),
        Point::from([5_200.0, 3_100.0, 4_100.0]),
    ]));
    let sets = candidate_sets(&db, &pq);
    for w in sets.windows(2) {
        assert!(w[0].is_subset(&w[1]));
    }
    // Overlap makes F-SD nearly useless (the paper's NBA/GW observation):
    // its candidate set should be much larger than S-SD's.
    assert!(
        sets[3].len() >= sets[0].len(),
        "FSD should not beat SSD on overlapping data"
    );
}

#[test]
fn clustered_2d_pipeline() {
    let objects = gowalla_like(120, 8, 6);
    let db = Database::new(objects);
    let pq = PreparedQuery::new(UncertainObject::uniform(vec![
        Point::from([5_000.0, 5_000.0]),
        Point::from([5_050.0, 4_950.0]),
    ]));
    let sets = candidate_sets(&db, &pq);
    for w in sets.windows(2) {
        assert!(w[0].is_subset(&w[1]));
    }
    for (i, &op) in Operator::ALL.iter().enumerate() {
        let (brute, _) = nn_candidates_bruteforce(&db, &pq, op, &FilterConfig::all());
        let brute: BTreeSet<usize> = brute.into_iter().collect();
        assert_eq!(sets[i], brute, "oracle mismatch for {op:?}");
    }
}

/// §1 / §2.1: multi-valued objects are normalised to probabilities for
/// dominance checking; the NN candidates must be identical whether weights
/// arrive raw or pre-normalised (equal total masses).
#[test]
fn multivalued_normalisation_preserves_candidates() {
    let raw: Vec<Vec<(Point, f64)>> = vec![
        vec![
            (Point::from([1.0, 1.0]), 2.0),
            (Point::from([2.0, 1.5]), 4.0),
            (Point::from([1.5, 2.0]), 2.0),
        ],
        vec![
            (Point::from([3.0, 3.0]), 6.0),
            (Point::from([4.0, 2.0]), 2.0),
        ],
        vec![
            (Point::from([8.0, 8.0]), 4.0),
            (Point::from([9.0, 9.0]), 4.0),
        ],
    ];
    let weighted: Vec<UncertainObject> = raw
        .iter()
        .map(|insts| UncertainObject::from_weighted(insts.clone()))
        .collect();
    let normalised: Vec<UncertainObject> = raw
        .iter()
        .map(|insts| {
            let total: f64 = insts.iter().map(|(_, w)| w).sum();
            UncertainObject::new(insts.iter().map(|(p, w)| (p.clone(), w / total)).collect())
        })
        .collect();
    let q = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([0.0, 0.0])]));
    let db_w = Database::new(weighted);
    let db_n = Database::new(normalised);
    for op in Operator::ALL {
        let a = nn_candidates(&db_w, &q, op, &FilterConfig::all()).ids();
        let b = nn_candidates(&db_n, &q, op, &FilterConfig::all()).ids();
        assert_eq!(a, b, "normalisation changed candidates for {op:?}");
    }
}

/// The filter ablation ladder returns identical candidate sets at database
/// scale (the §5.1 filters are exactness-preserving end to end).
#[test]
fn filter_ladder_consistent_at_scale() {
    let params = SynthParams {
        n: 80,
        dim: 2,
        instances: 5,
        edge: 1000.0,
        centers: CenterDistribution::Independent,
        seed: 21,
    };
    let objects = generate_objects(&params);
    let queries = generate_queries(&params, 2, 4, 500.0, 13);
    let db = Database::new(objects);
    for q in queries {
        let pq = PreparedQuery::new(q);
        for op in [Operator::SSd, Operator::SsSd, Operator::PSd] {
            let baseline: BTreeSet<usize> = nn_candidates(&db, &pq, op, &FilterConfig::bf())
                .ids()
                .into_iter()
                .collect();
            for (name, cfg) in FilterConfig::ablation_ladder() {
                let got: BTreeSet<usize> = nn_candidates(&db, &pq, op, &cfg)
                    .ids()
                    .into_iter()
                    .collect();
                assert_eq!(got, baseline, "{op:?} under {name} changed the candidates");
            }
        }
    }
}

/// Query preparation invariants on generated data: hull ⊆ instances and
/// dominance answers identical with/without the hull reduction (covered by
/// the geometric flag inside the ladder, asserted here at object level).
#[test]
fn query_hull_reduction_is_lossless() {
    let params = SynthParams {
        n: 30,
        dim: 2,
        instances: 8,
        edge: 900.0,
        centers: CenterDistribution::Independent,
        seed: 31,
    };
    let objects = generate_objects(&params);
    let queries = generate_queries(&params, 5, 12, 600.0, 17);
    for q in queries {
        let pq = PreparedQuery::new(q);
        assert!(pq.hull().len() <= pq.instance_points().len());
        for u in objects.iter().take(6) {
            for v in objects.iter().take(6) {
                let full = osd::geom::closer_to_all(
                    &u.instances()[0].point,
                    &v.instances()[0].point,
                    pq.instance_points(),
                );
                let hull = osd::geom::closer_to_all(
                    &u.instances()[0].point,
                    &v.instances()[0].point,
                    pq.hull(),
                );
                assert_eq!(full, hull, "hull reduction changed ⪯_Q");
            }
        }
    }
}
