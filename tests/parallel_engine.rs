//! End-to-end determinism of the parallel batch executor.
//!
//! `QueryEngine::run_batch` spreads independent queries over OS threads,
//! one dominance cache per worker. These tests pin down the contract on a
//! realistic workload — a 1000-object A-N database — rather than the toy
//! fixtures of the unit tests: thread count must never change the answer,
//! and the merged counters must equal the sequential sums exactly.

// Integration test: aborts are intentional.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use osd::datagen::{generate_objects, object_around, CenterDistribution, SynthParams};
use osd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 1000-object anti-correlated (A-N) database plus a prepared workload.
fn workbench(queries: usize) -> (Database, Vec<PreparedQuery>) {
    let objects = generate_objects(&SynthParams {
        n: 1_000,
        dim: 3,
        instances: 6,
        edge: 400.0,
        centers: CenterDistribution::AntiCorrelated,
        seed: 0xA11,
    });
    let db = Database::new(objects);
    let mut rng = StdRng::seed_from_u64(0xA12);
    let qs = (0..queries)
        .map(|_| {
            let center: Vec<f64> = (0..3).map(|_| rng.gen_range(2_000.0..8_000.0)).collect();
            PreparedQuery::new(object_around(&mut rng, &center, 3, 4, 200.0))
        })
        .collect();
    (db, qs)
}

/// Candidate ids (and their order) must be identical at every thread
/// count: parallelism only partitions the workload, never the per-query
/// traversal.
#[test]
fn run_batch_is_deterministic_across_thread_counts() {
    let (db, queries) = workbench(12);
    for op in [Operator::SSd, Operator::PSd] {
        let engine = QueryEngine::new(&db, op);
        let sequential = engine.run_batch(&queries, 1);
        let baseline: Vec<Vec<usize>> = sequential.iter().map(|r| r.ids()).collect();
        assert!(
            baseline.iter().any(|ids| !ids.is_empty()),
            "workload produced no candidates at all for {op:?} — fixture too weak"
        );
        for threads in [2, 4, 8] {
            let parallel = engine.run_batch(&queries, threads);
            let got: Vec<Vec<usize>> = parallel.iter().map(|r| r.ids()).collect();
            assert_eq!(
                got, baseline,
                "{op:?} with {threads} threads diverged from the sequential run"
            );
        }
    }
}

/// The merged counters of a parallel run equal the exact sum of the
/// per-query sequential counters — per-worker caches change nothing
/// because each query gets a fresh cache in both modes.
#[test]
fn merged_stats_equal_sequential_sums() {
    let (db, queries) = workbench(10);
    let engine = QueryEngine::new(&db, Operator::PSd);

    let mut expected = Stats::default();
    for q in &queries {
        let res = nn_candidates(&db, q, Operator::PSd, &FilterConfig::all());
        expected.merge(&res.stats);
    }
    assert!(expected.dominance_checks > 0, "fixture too weak");

    let merged = batch_stats(&engine.run_batch(&queries, 4));
    assert_eq!(merged.dominance_checks, expected.dominance_checks);
    assert_eq!(merged.instance_comparisons, expected.instance_comparisons);
    assert_eq!(merged.flow_runs, expected.flow_runs);
    assert_eq!(merged.mbr_checks, expected.mbr_checks);
}
