//! Instrumentation-purity regression test (workspace facade level).
//!
//! The deeper per-operator baseline table lives in
//! `crates/core/tests/obs_purity.rs`; this suite pins the same contract
//! through the `osd` facade, where the tier-1 build runs with the `obs`
//! feature *off*:
//!
//! * with `obs` off, the metrics registry and the tracer are zero-sized
//!   no-ops — a traced run produces no trace and costs nothing;
//! * in **both** builds, turning instrumentation on (`--profile`-style
//!   metrics or `FilterConfig::traced` flight recording) leaves every
//!   candidate id, `min_dist` bit pattern and legacy counter bit-identical
//!   to the bare run;
//! * a fixed pre-instrumentation baseline (captured from commit 71f4287)
//!   still holds, so the hooks cannot have leaked into the computation.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd::prelude::*;

/// The deterministic xorshift scatter used by the engine determinism tests.
fn scatter(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
    };
    (0..n)
        .map(|_| {
            UncertainObject::uniform(
                (0..instances)
                    .map(|_| Point::new(vec![next(), next()]))
                    .collect(),
            )
        })
        .collect()
}

/// Everything deterministic about one query result.
fn fingerprint(db: &Database, q: &PreparedQuery, op: Operator, cfg: &FilterConfig) -> String {
    let r = nn_candidates(db, q, op, cfg);
    format!(
        "{:?}|{:?}|{}",
        r.candidates
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect::<Vec<_>>(),
        r.stats,
        r.objects_checked
    )
}

#[test]
fn disabled_instrumentation_is_zero_sized() {
    if QueryMetrics::enabled() {
        return; // obs build: the registry is real by design.
    }
    assert_eq!(std::mem::size_of::<QueryMetrics>(), 0);
    assert!(!QueryTrace::enabled());
    assert_eq!(std::mem::size_of::<QueryTrace>(), 0);
    // The no-op tracer also records nothing through the full API surface.
    let mut t = QueryTrace::start("noop", 64);
    assert!(!t.is_active());
    let span = t.open("child");
    t.attr(span, "k", osd::obs::AttrValue::U64(1));
    t.close(span);
    assert!(t.finish().is_none());
}

#[test]
fn tracing_and_metrics_never_change_results() {
    let db = Database::new(scatter(40, 3, 0x0517));
    let queries: Vec<PreparedQuery> = scatter(5, 2, 99)
        .into_iter()
        .map(PreparedQuery::new)
        .collect();
    let plain = FilterConfig::all();
    let traced = FilterConfig::all().traced();
    for op in Operator::ALL {
        for q in &queries {
            assert_eq!(
                fingerprint(&db, q, op, &plain),
                fingerprint(&db, q, op, &traced),
                "{op:?}: tracing changed the result"
            );
        }
    }
}

#[test]
fn traces_exist_exactly_when_obs_is_on_and_requested() {
    let db = Database::new(scatter(30, 3, 0x0517));
    let q = PreparedQuery::new(scatter(1, 2, 7).remove(0));

    // Not requested: never a trace, in either build.
    let bare = nn_candidates(&db, &q, Operator::PSd, &FilterConfig::all());
    assert!(bare.trace.is_none());

    let traced = nn_candidates(&db, &q, Operator::PSd, &FilterConfig::all().traced());
    match traced.trace {
        Some(t) => {
            assert!(QueryTrace::enabled(), "obs-off build produced a trace");
            assert_eq!(t.label, Operator::PSd.label());
            assert!(!t.spans.is_empty());
            assert!(t.spans[0].is_root());
            // A recorder accepts it and retains it.
            let mut rec = FlightRecorder::default();
            rec.record(t);
            assert_eq!(rec.recorded(), 1);
        }
        None => assert!(
            !QueryTrace::enabled(),
            "obs build dropped a requested trace"
        ),
    }
}

#[test]
fn results_and_stats_match_pre_instrumentation_baseline() {
    let db = Database::new(scatter(40, 3, 0x0517));
    let queries: Vec<PreparedQuery> = scatter(5, 2, 99)
        .into_iter()
        .map(PreparedQuery::new)
        .collect();

    // (operator, query index, candidate ids in emission order,
    //  instance_comparisons, dominance_checks, flow_runs, mbr_checks,
    //  objects_checked) — captured from commit 71f4287 (pre-osd-obs);
    // the P-SD rows exercise every phase including the flow refinement.
    #[allow(clippy::type_complexity)]
    let baseline: &[(Operator, usize, &[usize], u64, u64, u64, u64, usize)] = &[
        (
            Operator::PSd,
            0,
            &[5, 0, 14, 25, 31, 9, 20, 24, 32, 21, 37],
            5130,
            278,
            44,
            387,
            40,
        ),
        (
            Operator::PSd,
            4,
            &[
                28, 34, 24, 1, 13, 9, 7, 2, 29, 10, 35, 3, 17, 20, 11, 19, 36, 0, 21, 38, 6, 26,
                16, 15,
            ],
            5516,
            366,
            33,
            453,
            40,
        ),
        (
            Operator::SSd,
            4,
            &[28, 34, 24, 1, 2, 10, 17, 36, 26],
            1430,
            103,
            0,
            103,
            40,
        ),
        (
            Operator::FPlusSd,
            0,
            &[
                5, 0, 14, 25, 31, 9, 20, 24, 32, 21, 37, 38, 7, 18, 13, 12, 16, 1, 27, 10, 2, 29,
                17, 15, 34, 6, 11, 19, 22, 3, 35, 36, 26, 33,
            ],
            80,
            615,
            0,
            1230,
            40,
        ),
    ];

    // The baseline must hold bare *and* traced: instrumentation reads,
    // never writes.
    for cfg in [FilterConfig::all(), FilterConfig::all().traced()] {
        for &(op, qi, ids, ic, dc, fl, mbr, checked) in baseline {
            let r = QueryEngine::with_config(&db, op, cfg).run(&queries[qi]);
            assert_eq!(r.ids(), ids, "{op:?} q{qi}: candidate ids drifted");
            assert_eq!(
                (
                    r.stats.instance_comparisons,
                    r.stats.dominance_checks,
                    r.stats.flow_runs,
                    r.stats.mbr_checks,
                    r.objects_checked,
                ),
                (ic, dc, fl, mbr, checked),
                "{op:?} q{qi}: legacy counters drifted"
            );
        }
    }
}
