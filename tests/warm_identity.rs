//! Warm-cache identity: queries answered through a snapshot-scoped
//! [`WarmPool`] are **bit-identical** — candidate ids, `min_dist` bit
//! patterns, emission order and [`Stats`] counters — to fully cold runs
//! on the same snapshot, across an interleaved insert/delete/update
//! churn driven through [`PublishedIndex`], for both physical layouts.
//!
//! Also pinned here: the epoch-keying contract. A cache built for one
//! `(store, epoch)` pair can never serve entries to a different store or
//! a later epoch — invalidation evicts exactly what the epoch log
//! touched, and a foreign store forces a full rebuild (no cross-store
//! hits, ever).
//!
//! Everything runs under both feature configs: with `obs` off the warm
//! counters compile to no-ops but the result contract is unchanged.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd_core::{
    nn_candidates, nn_candidates_warm, ContinuousNnc, Database, FilterConfig, NncResult, Operator,
    PreparedQuery, PublishedIndex, ShardedDatabase, SpatialIndex, WarmPool,
};
use osd_datagen::{generate_objects, CenterDistribution, SynthParams};
use osd_uncertain::UncertainObject;

/// A randomized A-N (anti-correlated) pool, the paper's main data family.
fn an_objects(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    generate_objects(&SynthParams {
        n,
        dim: 2,
        instances,
        edge: 800.0,
        centers: CenterDistribution::AntiCorrelated,
        seed,
    })
}

fn queries_for(objects: &[UncertainObject], seed: u64) -> Vec<PreparedQuery> {
    let pool = generate_objects(&SynthParams {
        n: 4,
        dim: 2,
        instances: 5,
        edge: 800.0,
        centers: CenterDistribution::Independent,
        seed,
    });
    let _ = objects;
    pool.into_iter().map(PreparedQuery::new).collect()
}

/// The bit-identity fingerprint: ids, `min_dist` bits, and the exact
/// [`osd_core::Stats`] counters (the warm path must charge every
/// per-use comparison identically).
fn fingerprint(r: &NncResult) -> (Vec<(usize, u64)>, osd_core::Stats) {
    (
        r.candidates
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect(),
        r.stats,
    )
}

/// Interleaved churn on one layout: after every published epoch, every
/// query answered warm (through the index's own pool) must fingerprint-
/// match a cold run on the same pinned snapshot, and a standing
/// [`ContinuousNnc`] refreshed warm must match a cold full re-query.
fn churn_identity(shards: usize) {
    let objects = an_objects(160, 5, 0x3aa);
    let pool = an_objects(40, 5, 77);
    let queries = queries_for(&objects, 31);
    let cfg = FilterConfig::all();
    let op = Operator::PSd;
    let n0 = objects.len();

    let idx = PublishedIndex::new(ShardedDatabase::new(objects, shards));
    let mut handle = ContinuousNnc::new(&*idx.pin(), queries[0].clone(), op, cfg);
    let mut alive: Vec<usize> = (0..n0).collect();

    for i in 0..24usize {
        match i % 3 {
            0 => {
                let id = idx.insert(pool[i % pool.len()].clone()).unwrap();
                alive.push(id);
            }
            1 => {
                let victim = alive.remove((i * 7) % alive.len());
                idx.delete(victim).unwrap();
            }
            _ => {
                let target = alive[(i * 5) % alive.len()];
                idx.update(target, pool[(i + 1) % pool.len()].clone())
                    .unwrap();
            }
        }
        let snap = idx.pin();
        for q in &queries {
            let warm = nn_candidates_warm(&*snap, q, op, &cfg, idx.warm_pool());
            let cold = nn_candidates(&*snap, q, op, &cfg);
            assert_eq!(
                fingerprint(&warm),
                fingerprint(&cold),
                "warm diverged from cold at epoch {} ({} shards)",
                snap.epoch(),
                shards
            );
        }
        handle.refresh_with(&*snap, Some(idx.warm_pool()));
        let requery = nn_candidates(&*snap, handle.query(), op, &cfg);
        let repaired: Vec<(usize, u64)> = handle
            .candidates()
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect();
        let queried: Vec<(usize, u64)> = requery
            .candidates
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect();
        assert_eq!(
            repaired,
            queried,
            "warm continuous repair diverged at epoch {} ({} shards)",
            snap.epoch(),
            shards
        );
    }
}

#[test]
fn warm_matches_cold_across_churn_flat() {
    churn_identity(1);
}

#[test]
fn warm_matches_cold_across_churn_sharded() {
    churn_identity(3);
}

/// A pool keyed to one store can never serve entries to another store:
/// the foreign snapshot forces a full rebuild, so the second run's
/// misses repeat and no cross-store hit is ever recorded.
#[test]
fn foreign_store_never_serves_stale_entries() {
    let objects = an_objects(80, 4, 5);
    let q = queries_for(&objects, 9).remove(0);
    let cfg = FilterConfig::all();
    let op = Operator::SSd;

    let a = Database::new(objects.clone());
    let b = Database::new(objects);
    let pool = WarmPool::new();

    let on_a = nn_candidates_warm(&a, &q, op, &cfg, &pool);
    let after_a = pool.stats();

    // Same bytes, different store: the (ptr, epoch) key must not match.
    let on_b = nn_candidates_warm(&b, &q, op, &cfg, &pool);
    let after_b = pool.stats();

    assert_eq!(fingerprint(&on_a), fingerprint(&on_b));
    assert_eq!(
        after_b.hits, after_a.hits,
        "a hit after the store swap means a stale entry was served"
    );
    assert!(
        after_b.misses > after_a.misses,
        "the foreign store must rebuild, not reuse"
    );

    // Re-running on the *same* store now hits.
    let again = nn_candidates_warm(&b, &q, op, &cfg, &pool);
    assert_eq!(fingerprint(&on_b), fingerprint(&again));
    let after_again = pool.stats();
    assert!(
        after_again.hits > after_b.hits,
        "same-snapshot reuse must hit"
    );
}

/// Epoch invalidation through the published chain: a mutation that
/// touches a cached object evicts its entries; the stale epoch key never
/// answers on the new snapshot (the pool's cache epoch always tracks
/// the snapshot it serves).
#[test]
fn swapped_epoch_evicts_touched_entries() {
    let objects = an_objects(100, 4, 11);
    let q = queries_for(&objects, 13).remove(0);
    let cfg = FilterConfig::all();
    let op = Operator::PSd;

    let idx = PublishedIndex::new(ShardedDatabase::new(objects, 2));
    let warm0 = nn_candidates_warm(&*idx.pin(), &q, op, &cfg, idx.warm_pool());
    let victim = warm0.candidates.first().map(|c| c.id).unwrap();
    let stats0 = idx.warm_pool().stats();
    assert_eq!(stats0.epoch, 0);

    idx.delete(victim).unwrap();
    let snap = idx.pin();
    let warm1 = nn_candidates_warm(&*snap, &q, op, &cfg, idx.warm_pool());
    let cold1 = nn_candidates(&*snap, &q, op, &cfg);
    let stats1 = idx.warm_pool().stats();

    assert_eq!(fingerprint(&warm1), fingerprint(&cold1));
    assert!(
        warm1.candidates.iter().all(|c| c.id != victim),
        "a tombstoned object leaked out of the warm path"
    );
    assert_eq!(
        stats1.epoch,
        snap.epoch(),
        "the pool must key to the snapshot it serves"
    );
    assert!(
        stats1.evictions > stats0.evictions,
        "deleting a cached candidate must evict its warm entries"
    );
}
