//! Columnar-store round-trip properties: the flat SoA `InstanceStore` must
//! be a *bit-for-bit* faithful re-encoding of the boxed object model.
//!
//! * store ⇄ objects round-trips coordinates, masses and MBRs exactly;
//! * the borrowed-slice kernels (`dist_slice`, `Mbr::from_rows`) reproduce
//!   the boxed kernels to the last mantissa bit;
//! * NNC / k-NNC over a store-backed [`Database`] agree with the O(n²)
//!   brute-force oracle on randomized A-N (anti-correlated) workloads —
//!   the dataset family the paper's evaluation leans on — for every
//!   dominance operator.
//!
//! Everything here also runs under `--features strict-invariants`, where
//! the Theorem 2 cover-chain audits ride along with each dominance check.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd::prelude::*;
use osd_core::{k_nn_candidates, k_nn_candidates_bruteforce, nn_candidates_bruteforce};
use osd_datagen::{generate_objects, CenterDistribution, SynthParams};
use osd_geom::{dist_slice, Mbr};
use osd_uncertain::{DistanceDistribution, InstanceStore};
use proptest::prelude::*;

/// A randomized A-N (anti-correlated) workload: the store is exercised on
/// the same data family as the paper's evaluation.
fn an_objects(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    generate_objects(&SynthParams {
        n,
        dim: 2,
        instances,
        edge: 800.0,
        centers: CenterDistribution::AntiCorrelated,
        seed,
    })
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// objects → store → objects is the identity, down to the float bits:
    /// coordinates, probability masses, spans and MBRs all survive.
    #[test]
    fn prop_store_roundtrip_is_bitwise_identity(
        n in 1usize..14,
        m in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let objects = an_objects(n, m, seed);
        let store = InstanceStore::from_objects(&objects).unwrap();
        prop_assert_eq!(store.validate(), Ok(()));
        prop_assert_eq!(store.len(), objects.len());
        prop_assert_eq!(store.instance_count(), n * m);

        let back = store.to_objects();
        prop_assert_eq!(back.len(), objects.len());
        for (orig, round) in objects.iter().zip(back.iter()) {
            prop_assert_eq!(orig.len(), round.len());
            prop_assert_eq!(bits(orig.mbr().lo()), bits(round.mbr().lo()));
            prop_assert_eq!(bits(orig.mbr().hi()), bits(round.mbr().hi()));
            for (a, b) in orig.instances().iter().zip(round.instances().iter()) {
                prop_assert_eq!(bits(a.point.coords()), bits(b.point.coords()));
                prop_assert_eq!(a.prob.to_bits(), b.prob.to_bits());
            }
        }
    }

    /// The borrowed-row kernels reproduce the boxed kernels bit-for-bit:
    /// per-row distances, the row-block MBR fold, and the ref-based
    /// distance-distribution constructors.
    #[test]
    fn prop_slice_kernels_match_boxed_kernels_bitwise(
        n in 1usize..10,
        m in 1usize..5,
        seed in 0u64..1_000,
        qx in 0.0f64..10_000.0,
        qy in 0.0f64..10_000.0,
    ) {
        let objects = an_objects(n, m, seed);
        let store = InstanceStore::from_objects(&objects).unwrap();
        let q = Point::new(vec![qx, qy]);
        let query = UncertainObject::uniform(vec![q.clone()]);

        for (id, obj) in objects.iter().enumerate() {
            let view = store.object(id);
            // Row-block MBR fold == boxed point-set MBR fold.
            let from_rows = Mbr::from_rows(view.coords(), view.dim());
            prop_assert_eq!(bits(from_rows.lo()), bits(obj.mbr().lo()));
            prop_assert_eq!(bits(from_rows.hi()), bits(obj.mbr().hi()));
            // Per-row distances == boxed point distances, and total_cmp
            // agrees on their ordering against any other row.
            for (i, inst) in obj.instances().iter().enumerate() {
                let d_slice = dist_slice(view.row(i), q.coords());
                let d_boxed = inst.point.dist(&q);
                prop_assert_eq!(d_slice.to_bits(), d_boxed.to_bits());
                prop_assert_eq!(
                    d_slice.total_cmp(&d_boxed),
                    std::cmp::Ordering::Equal
                );
            }
            // Ref-based distribution constructors == boxed constructors.
            let d_ref = DistanceDistribution::between_ref(view, &query);
            let d_boxed = DistanceDistribution::between(obj, &query);
            prop_assert_eq!(d_ref.min().to_bits(), d_boxed.min().to_bits());
            prop_assert_eq!(d_ref.mean().to_bits(), d_boxed.mean().to_bits());
            prop_assert_eq!(d_ref.max().to_bits(), d_boxed.max().to_bits());
        }
    }

    /// Algorithm 1 and its k-robust extension over the store-backed
    /// database agree with the brute-force oracle for every operator on
    /// randomized A-N workloads.
    #[test]
    fn prop_nnc_and_knnc_match_bruteforce_on_an(
        n in 2usize..12,
        m in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let objects = an_objects(n, m, seed);
        let db = Database::new(objects);
        let query = PreparedQuery::new(UncertainObject::uniform(vec![
            Point::new(vec![5_000.0, 5_000.0]),
            Point::new(vec![5_200.0, 4_800.0]),
        ]));
        let cfg = FilterConfig::all();
        for op in Operator::ALL {
            let mut algo = nn_candidates(&db, &query, op, &cfg).ids();
            algo.sort_unstable();
            let (brute, _) = nn_candidates_bruteforce(&db, &query, op, &cfg);
            prop_assert_eq!(&algo, &brute, "NNC mismatch for {:?}", op);
            for k in [1usize, 2] {
                let mut robust = k_nn_candidates(&db, &query, op, k, &cfg).ids();
                robust.sort_unstable();
                let oracle = k_nn_candidates_bruteforce(&db, &query, op, k, &cfg);
                prop_assert_eq!(&robust, &oracle, "k-NNC mismatch for {:?}, k = {}", op, k);
            }
        }
    }

    /// Incremental growth: `push_object` extends the columns exactly as a
    /// from-scratch build over the concatenated object list would.
    #[test]
    fn prop_push_object_matches_from_scratch_build(
        n in 1usize..10,
        m in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let objects = an_objects(n + 1, m, seed);
        let (head, tail) = objects.split_at(n);
        let mut grown = InstanceStore::from_objects(head).unwrap();
        let id = grown.push_object(&tail[0]).unwrap();
        prop_assert_eq!(id, n);
        let scratch = InstanceStore::from_objects(&objects).unwrap();
        prop_assert_eq!(grown.validate(), Ok(()));
        prop_assert_eq!(bits(grown.coords()), bits(scratch.coords()));
        prop_assert_eq!(bits(grown.probs()), bits(scratch.probs()));
        for idx in 0..scratch.len() {
            prop_assert_eq!(
                bits(grown.object(idx).mbr().lo()),
                bits(scratch.object(idx).mbr().lo())
            );
            prop_assert_eq!(
                bits(grown.object(idx).mbr().hi()),
                bits(scratch.object(idx).mbr().hi())
            );
        }
    }
}
