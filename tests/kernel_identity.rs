//! Bit-identity properties of the blocked hot-path kernels.
//!
//! The `kernels` strategy of [`FilterConfig`] promises to be a pure
//! execution strategy: same results, same frozen cost counters, to the
//! last bit. This suite pins that contract from three directions:
//!
//! * the osd-geom row kernels (`dist2_rows_batch`, `min_dist2_rows`,
//!   `max_dist2_rows`) reproduce the scalar `dist2_slice` folds bitwise
//!   across dims 1–8, including ±0.0 coordinates, duplicated rows and
//!   single-row blocks;
//! * NNC and k-NNC with kernels on emit the same candidates (ids, order,
//!   `min_dist` bits) and the same frozen counters as the scalar path;
//! * NNC and k-NNC with kernels on agree with the O(n²) brute-force
//!   oracle for every dominance operator on randomized A-N workloads.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd::prelude::*;
use osd_core::{k_nn_candidates, k_nn_candidates_bruteforce, nn_candidates_bruteforce};
use osd_datagen::{generate_objects, CenterDistribution, SynthParams};
use osd_geom::{dist2_rows_batch, dist2_slice, max_dist2_rows, min_dist2_rows};
use proptest::prelude::*;

/// Seed-driven coordinate block with the awkward cases over-represented:
/// both signed zeros, denormal-scale and large magnitudes, and the classic
/// non-representable decimal, mixed with ordinary values.
fn awkward_coords(len: usize, seed: u64) -> Vec<f64> {
    let menu = [0.0, -0.0, 1e-13, -1e-13, 3e7, 0.1 + 0.2, -271.25, 13.5];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pick = (state % 16) as usize;
            if pick < menu.len() {
                menu[pick]
            } else {
                ((state >> 16) % 2_000_000) as f64 / 1_000.0 - 1_000.0
            }
        })
        .collect()
}

/// A row block of `n` rows in `dim` dimensions plus one query point, with
/// the first row duplicated at the end when possible (duplicated rows must
/// not perturb any fold).
fn block(dim: usize, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rows = awkward_coords(dim * n, seed);
    let q = awkward_coords(dim, seed.wrapping_add(0x5DEE_CE66));
    if rows.len() >= dim {
        let first: Vec<f64> = rows[..dim].to_vec();
        rows.extend(first);
    }
    (rows, q)
}

/// A randomized A-N workload, the dataset family of the paper's evaluation.
fn an_objects(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    generate_objects(&SynthParams {
        n,
        dim: 2,
        instances,
        edge: 800.0,
        centers: CenterDistribution::AntiCorrelated,
        seed,
    })
}

/// The counters the bit-identity contract freezes (`rtree_nodes_visited`
/// and the cache tallies are exempt by design).
fn frozen(stats: &osd_core::Stats) -> (u64, u64, u64, u64) {
    (
        stats.instance_comparisons,
        stats.dominance_checks,
        stats.flow_runs,
        stats.mbr_checks,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batched distance table equals a per-row `dist2_slice` scan, and
    /// the min/max folds equal the scalar accumulator folds, all bitwise —
    /// across dims 1–8, ±0.0, duplicated rows, empty and single-row blocks.
    #[test]
    fn prop_row_kernels_match_scalar_folds_bitwise(
        dim in 1usize..=8,
        n_rows in 0usize..7,
        seed in 0u64..1_000_000,
    ) {
        let (rows, q) = block(dim, n_rows, seed);
        let n = rows.len() / dim;
        let mut out = vec![f64::NAN; n];
        dist2_rows_batch(&rows, dim, &q, &mut out);
        let mut min_fold = f64::INFINITY;
        let mut max_fold = 0.0f64;
        for (i, row) in rows.chunks_exact(dim).enumerate() {
            let scalar = dist2_slice(row, &q);
            prop_assert_eq!(out[i].to_bits(), scalar.to_bits(), "row {}", i);
            min_fold = min_fold.min(scalar);
            max_fold = max_fold.max(scalar);
        }
        prop_assert_eq!(min_dist2_rows(&rows, dim, &q).to_bits(), min_fold.to_bits());
        prop_assert_eq!(max_dist2_rows(&rows, dim, &q).to_bits(), max_fold.to_bits());
        // The sqrt-then-square round trip the traversal key relies on:
        // min is monotone, so folding after sqrt commutes bitwise.
        let via_sqrt = {
            let d = min_dist2_rows(&rows, dim, &q).sqrt();
            d * d
        };
        let scalar_key = rows
            .chunks_exact(dim)
            .map(|row| {
                let d = dist2_slice(row, &q).sqrt();
                d * d
            })
            .fold(f64::INFINITY, f64::min);
        if n > 0 {
            prop_assert_eq!(via_sqrt.to_bits(), scalar_key.to_bits());
        }
    }

    /// Kernels on vs kernels off: identical candidate ids and order,
    /// identical `min_dist` bits, identical frozen counters — for NNC and
    /// k-NNC, single- and multi-instance objects and queries alike.
    #[test]
    fn prop_kernels_and_scalar_paths_are_bit_identical(
        n in 2usize..12,
        m in 1usize..4,
        m_q in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let db = Database::new(an_objects(n, m, seed));
        let q_pts = (0..m_q)
            .map(|i| Point::new(vec![5_000.0 + 150.0 * i as f64, 5_000.0 - 180.0 * i as f64]))
            .collect();
        let query = PreparedQuery::new(UncertainObject::uniform(q_pts));
        let with = FilterConfig::all();
        let without = with.scalar();
        for op in Operator::ALL {
            let k_res = nn_candidates(&db, &query, op, &with);
            let s_res = nn_candidates(&db, &query, op, &without);
            prop_assert_eq!(k_res.ids(), s_res.ids(), "{:?} ids", op);
            for (a, b) in k_res.candidates.iter().zip(s_res.candidates.iter()) {
                prop_assert_eq!(
                    a.min_dist.to_bits(),
                    b.min_dist.to_bits(),
                    "{:?} min_dist", op
                );
            }
            prop_assert_eq!(frozen(&k_res.stats), frozen(&s_res.stats), "{:?} counters", op);
            prop_assert!(
                k_res.stats.rtree_nodes_visited <= s_res.stats.rtree_nodes_visited,
                "{:?}: the multi-point descent must never expand more nodes", op
            );
            for k in [1usize, 2] {
                let kk = k_nn_candidates(&db, &query, op, k, &with);
                let ks = k_nn_candidates(&db, &query, op, k, &without);
                prop_assert_eq!(kk.ids(), ks.ids(), "{:?} k={} ids", op, k);
                prop_assert_eq!(
                    frozen(&kk.stats),
                    frozen(&ks.stats),
                    "{:?} k={} counters", op, k
                );
            }
        }
    }

    /// With kernels on, NNC and k-NNC still agree with the O(n²)
    /// brute-force oracle for every operator.
    #[test]
    fn prop_kernel_paths_match_bruteforce(
        n in 2usize..10,
        m in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let db = Database::new(an_objects(n, m, seed));
        let query = PreparedQuery::new(UncertainObject::uniform(vec![
            Point::new(vec![5_000.0, 5_000.0]),
            Point::new(vec![5_200.0, 4_800.0]),
        ]));
        let cfg = FilterConfig::all();
        prop_assert!(cfg.kernels);
        for op in Operator::ALL {
            let mut algo = nn_candidates(&db, &query, op, &cfg).ids();
            algo.sort_unstable();
            let (brute, _) = nn_candidates_bruteforce(&db, &query, op, &cfg);
            prop_assert_eq!(&algo, &brute, "NNC mismatch for {:?}", op);
            for k in [1usize, 2] {
                let mut robust = k_nn_candidates(&db, &query, op, k, &cfg).ids();
                robust.sort_unstable();
                let oracle = k_nn_candidates_bruteforce(&db, &query, op, k, &cfg);
                prop_assert_eq!(&robust, &oracle, "k-NNC mismatch for {:?}, k = {}", op, k);
            }
        }
    }
}
