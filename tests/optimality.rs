//! Cross-crate verification of the paper's optimality theorems (§4.2):
//!
//! * **Correctness** — `SD(U, V, Q)` implies `f(U) ≤ f(V)` for every
//!   implemented `f` in the family the operator covers (Theorems 5–8);
//! * **Completeness** — `¬SD(U, V, Q)` implies a constructive witness
//!   function in the family prefers `V` (quantiles for S-SD, weighted
//!   per-world indicators for SS-SD);
//! * **Candidate containment** — the winner of every implemented NN
//!   function lies inside the matching operator's candidate set.

// Integration test: exact values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd::prelude::*;
use osd_uncertain::CDF_EPS;
use proptest::prelude::*;

fn object_strategy(max_m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..max_m).prop_map(|pts| {
        UncertainObject::uniform(
            pts.into_iter()
                .map(|(x, y)| Point::new(vec![x, y]))
                .collect(),
        )
    })
}

const QUANTILE_GRID: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5 (correctness): S-SD(U,V,Q) ⇒ f(U) ≤ f(V) for all N1.
    #[test]
    fn ssd_correct_wrt_n1(u in object_strategy(5), v in object_strategy(5), q in object_strategy(5)) {
        if s_sd(&u, &v, &q) {
            for f in [N1Function::Min, N1Function::Max, N1Function::Mean] {
                prop_assert!(f.score(&u, &q) <= f.score(&v, &q) + 1e-9, "{f:?} violated");
            }
            for phi in QUANTILE_GRID {
                let f = N1Function::Quantile(phi);
                prop_assert!(f.score(&u, &q) <= f.score(&v, &q) + 1e-9, "quantile {phi} violated");
            }
        }
    }

    /// Theorem 5 (completeness): ¬S-SD(U,V,Q) and ¬(U_Q = V_Q) ⇒ some
    /// quantile ranks V strictly better (the proof's witness: φ at the CDF
    /// crossing).
    #[test]
    fn ssd_complete_wrt_n1(u in object_strategy(5), v in object_strategy(5), q in object_strategy(5)) {
        let du = DistanceDistribution::between(&u, &q);
        let dv = DistanceDistribution::between(&v, &q);
        if !s_sd(&u, &v, &q) && !du.approx_eq(&dv, CDF_EPS) {
            // Witness per Appendix B.4: λ with Pr(U≤λ) < Pr(V≤λ); then
            // φ = Pr(V≤λ) satisfies quan_φ(V) ≤ λ < quan_φ(U).
            let mut witness = false;
            let mut probes: Vec<f64> = du.atoms().iter().chain(dv.atoms()).map(|&(x, _)| x).collect();
            probes.sort_by(f64::total_cmp);
            for lambda in probes {
                let (cu, cv) = (du.cdf(lambda), dv.cdf(lambda));
                if cu < cv - 1e-9 {
                    let phi = cv;
                    if dv.quantile(phi) < du.quantile(phi) - 1e-12 {
                        witness = true;
                        break;
                    }
                }
            }
            prop_assert!(witness, "no quantile witness found for ¬S-SD pair");
        }
    }

    /// Theorem 6 (correctness): SS-SD(U,V,Q) ⇒ N2 scores ordered — NN
    /// probability, expected rank, global top-k, and the full rank
    /// distribution in first-order dominance, in the presence of arbitrary
    /// other objects.
    #[test]
    fn sssd_correct_wrt_n2(
        u in object_strategy(4), v in object_strategy(4),
        others in prop::collection::vec(object_strategy(4), 0..3),
        q in object_strategy(4),
    ) {
        if ss_sd(&u, &v, &q) {
            let mut objects = vec![u, v];
            objects.extend(others);
            for f in [N2Function::NnProbability, N2Function::ExpectedRank,
                      N2Function::GlobalTopK(1), N2Function::GlobalTopK(2)] {
                let su = f.score(&objects, 0, &q);
                let sv = f.score(&objects, 1, &q);
                prop_assert!(su <= sv + 1e-9, "{} violated: {su} > {sv}", f.name());
            }
            // First-order dominance of the rank distributions: U's CDF over
            // ranks is everywhere at least V's.
            let ru = rank_distribution(&objects, 0, &q);
            let rv = rank_distribution(&objects, 1, &q);
            let mut acc_u = 0.0;
            let mut acc_v = 0.0;
            for (a, b) in ru.iter().zip(rv.iter()) {
                acc_u += a;
                acc_v += b;
                prop_assert!(acc_u >= acc_v - 1e-9, "rank CDF dominance violated");
            }
        }
    }

    /// Theorem 6 (completeness): ¬SS-SD(U,V,Q) ⇒ the constructive witness
    /// of Appendix B.5 — a per-world indicator weighted by the failing
    /// query instance — ranks V strictly better.
    #[test]
    fn sssd_complete_wrt_n2(u in object_strategy(4), v in object_strategy(4), q in object_strategy(4)) {
        let du = DistanceDistribution::between(&u, &q);
        let dv = DistanceDistribution::between(&v, &q);
        if !ss_sd(&u, &v, &q) && !du.approx_eq(&dv, CDF_EPS) {
            // Find a failing query instance q1 and level λ1 with
            // Pr(U_q1 > λ1) > Pr(V_q1 > λ1).
            let mut witness = false;
            'outer: for qi in q.instances() {
                let uq = DistanceDistribution::to_instance(&u, &qi.point);
                let vq = DistanceDistribution::to_instance(&v, &qi.point);
                let mut probes: Vec<f64> =
                    uq.atoms().iter().chain(vq.atoms()).map(|&(x, _)| x).collect();
                probes.sort_by(f64::total_cmp);
                for lambda in probes {
                    if uq.cdf(lambda) < vq.cdf(lambda) - 1e-9 {
                        // f(X) = Pr(X_q1 > λ1)·p(q1): a valid N2 function
                        // (stable weighted sum of per-world indicators).
                        let fu = (1.0 - uq.cdf(lambda)) * qi.prob;
                        let fv = (1.0 - vq.cdf(lambda)) * qi.prob;
                        if fv < fu - 1e-12 {
                            witness = true;
                            break 'outer;
                        }
                    }
                }
            }
            prop_assert!(witness, "no per-instance witness found for ¬SS-SD pair");
        }
    }

    /// Theorem 7 (correctness): P-SD(U,V,Q) ⇒ N3 scores ordered —
    /// Hausdorff, Sum-of-Min and EMD/Netflow.
    #[test]
    fn psd_correct_wrt_n3(u in object_strategy(5), v in object_strategy(5), q in object_strategy(5)) {
        if p_sd(&u, &v, &q) {
            prop_assert!(hausdorff(&u, &q) <= hausdorff(&v, &q) + 1e-9, "hausdorff violated");
            prop_assert!(sum_min(&u, &q) <= sum_min(&v, &q) + 1e-9, "sum_min violated");
            prop_assert!(emd(&u, &q) <= emd(&v, &q) + 1e-6, "emd violated");
            prop_assert!(netflow(&u, &q) <= netflow(&v, &q) + 1e-6, "netflow violated");
        }
    }

    /// Theorem 8: F-SD is correct w.r.t. everything but NOT complete — it
    /// never contradicts P-SD, and the strictness gap is witnessed
    /// elsewhere (Figure 4 unit test).
    #[test]
    fn fsd_correct_wrt_all(u in object_strategy(5), v in object_strategy(5), q in object_strategy(5)) {
        if f_sd(&u, &v, &q) {
            for f in [N1Function::Min, N1Function::Max, N1Function::Mean] {
                prop_assert!(f.score(&u, &q) <= f.score(&v, &q) + 1e-9);
            }
            prop_assert!(hausdorff(&u, &q) <= hausdorff(&v, &q) + 1e-9);
            prop_assert!(emd(&u, &q) <= emd(&v, &q) + 1e-6);
        }
    }

    /// Candidate containment: the winner of every implemented function lies
    /// in the candidate set of the operator covering its family.
    #[test]
    fn winners_inside_candidate_sets(
        objs in prop::collection::vec(object_strategy(4), 3..8),
        q in object_strategy(4),
    ) {
        let db = Database::new(objs.clone());
        let pq = PreparedQuery::new(q.clone());
        let cfg = FilterConfig::all();
        let ssd: Vec<usize> = nn_candidates(&db, &pq, Operator::SSd, &cfg).ids();
        let sssd: Vec<usize> = nn_candidates(&db, &pq, Operator::SsSd, &cfg).ids();
        let psd: Vec<usize> = nn_candidates(&db, &pq, Operator::PSd, &cfg).ids();

        // N1 winners must be inside NNC(S-SD).
        for f in [N1Function::Min, N1Function::Max, N1Function::Mean, N1Function::Quantile(0.5)] {
            let w = argmin(objs.len(), |i| f.score(&objs[i], &q));
            prop_assert!(ssd.contains(&w), "{f:?} winner {w} outside NNC(S-SD) {ssd:?}");
        }
        // N2 winners must be inside NNC(SS-SD).
        for f in [N2Function::NnProbability, N2Function::ExpectedRank] {
            let w = argmin(objs.len(), |i| f.score(&objs, i, &q));
            prop_assert!(sssd.contains(&w), "{} winner {w} outside NNC(SS-SD) {sssd:?}", f.name());
        }
        // N3 winners must be inside NNC(P-SD).
        let w = argmin(objs.len(), |i| hausdorff(&objs[i], &q));
        prop_assert!(psd.contains(&w), "hausdorff winner {w} outside NNC(P-SD) {psd:?}");
        let w = argmin(objs.len(), |i| emd(&objs[i], &q));
        prop_assert!(psd.contains(&w), "emd winner {w} outside NNC(P-SD) {psd:?}");
        let w = argmin(objs.len(), |i| sum_min(&objs[i], &q));
        prop_assert!(psd.contains(&w), "sum_min winner {w} outside NNC(P-SD) {psd:?}");
    }
}

fn argmin(n: usize, score: impl Fn(usize) -> f64) -> usize {
    (0..n)
        .min_by(|&a, &b| score(a).total_cmp(&score(b)))
        .expect("non-empty")
}
