//! End-to-end exercise of the `strict-invariants` audit layer.
//!
//! With the feature on, every `dominates` call re-checks the Theorem 2
//! cover chain via `debug_assert!`, every R-tree mutation re-validates the
//! structure, and the relational spot-checkers of `osd_core::invariants`
//! become available. This test drives all of them across randomized
//! databases — it exists so `cargo test --features strict-invariants -q`
//! demonstrably runs the audit code, not just compiles it.
#![cfg(feature = "strict-invariants")]
// Integration test: aborts are intentional.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use osd::core::invariants::{irreflexivity_spot_check, transitivity_spot_check};
use osd::prelude::*;
use osd_core::{dominance_matrix, FilterConfig, Operator};
use osd_geom::Mbr;
use osd_rtree::{Entry, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_objects(rng: &mut StdRng, n: usize, instances: usize) -> Vec<UncertainObject> {
    (0..n)
        .map(|_| {
            UncertainObject::uniform(
                (0..instances)
                    .map(|_| Point::new(vec![rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0)]))
                    .collect(),
            )
        })
        .collect()
}

/// Every `dominates` call below runs the Theorem 2 cover-chain
/// `debug_assert!`; the spot-checkers then audit Theorem 9 and the
/// equal-twin guard over the same databases.
#[test]
fn dominance_audits_hold_over_random_databases() {
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..5 {
        let mut objects = random_objects(&mut rng, 7, 4);
        // An exact twin pair exercises the irreflexivity guard.
        objects.push(objects[0].clone());
        let db = Database::new(objects);
        let query = PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![
            rng.gen_range(0.0..30.0),
            rng.gen_range(0.0..30.0),
        ])]));
        let cfg = FilterConfig::all();
        for op in Operator::ALL {
            // The matrix fires a cover-chain audit per dominating pair.
            let m = dominance_matrix(&db, &query, op, &cfg);
            assert_eq!(m.len(), db.len(), "round {round}");
            assert_eq!(
                transitivity_spot_check(&db, &query, op, &cfg),
                Ok(()),
                "Theorem 9 violated for {op:?} in round {round}"
            );
            assert_eq!(
                irreflexivity_spot_check(&db, &query, op, &cfg),
                Ok(()),
                "equal-twin guard violated for {op:?} in round {round}"
            );
        }
    }
}

/// The parallel batch executor under the audit layer: every `dominates`
/// call inside every worker thread re-runs the Theorem 2 cover-chain
/// `debug_assert!`, so a cover-chain break anywhere in the parallel path
/// aborts this test. The answers must still match the sequential run.
#[test]
fn batch_executor_audits_hold_across_threads() {
    let mut rng = StdRng::seed_from_u64(23);
    let db = Database::new(random_objects(&mut rng, 60, 4));
    let queries: Vec<PreparedQuery> = (0..8)
        .map(|_| {
            PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..30.0),
            ])]))
        })
        .collect();
    for op in Operator::ALL {
        let engine = QueryEngine::new(&db, op);
        let sequential = engine.run_batch(&queries, 1);
        let parallel = engine.run_batch(&queries, 4);
        let seq_ids: Vec<Vec<usize>> = sequential.iter().map(|r| r.ids()).collect();
        let par_ids: Vec<Vec<usize>> = parallel.iter().map(|r| r.ids()).collect();
        assert_eq!(par_ids, seq_ids, "{op:?} diverged under strict-invariants");
    }
}

/// Insertions and deletions re-validate the R-tree structure after every
/// mutation (debug_assert! in insert/remove under this feature); the final
/// explicit validation confirms the API surface.
#[test]
fn rtree_structure_audits_hold_under_churn() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut tree: RTree<usize> = RTree::new(4);
    let mut live: Vec<(usize, Point)> = Vec::new();
    for i in 0..250usize {
        let p = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
        tree.insert(Mbr::from_point(&p), i);
        live.push((i, p));
        // Interleave deletions to exercise condensation and re-insertion.
        if i % 3 == 2 {
            let victim = live.remove(rng.gen_range(0..live.len()));
            let removed = tree.remove_item(&Mbr::from_point(&victim.1), |&x| x == victim.0);
            assert_eq!(removed, Some(victim.0));
        }
    }
    assert_eq!(tree.len(), live.len());
    tree.validate_structure().expect("tree structure intact");

    // Bulk loading validates too.
    let entries: Vec<Entry<usize>> = live
        .iter()
        .map(|(i, p)| Entry {
            mbr: Mbr::from_point(p),
            item: *i,
        })
        .collect();
    let bulk = RTree::bulk_load(6, entries);
    bulk.validate_structure()
        .expect("bulk-loaded structure intact");
}
